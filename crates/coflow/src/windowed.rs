//! Windowed (sharded) solves of the interval-indexed LP.
//!
//! The monolithic model of [`crate::relax`] couples coflows only through the
//! per-port load rows (11)–(12). Coflows that share no ingress or egress
//! port therefore live in *independent blocks* of the LP: the constraint
//! matrix is block-diagonal over the port-connected components of the
//! coflow set, and the relaxation factors exactly — solving each block
//! separately and concatenating the solutions solves the monolithic model.
//!
//! [`try_solve_interval_lp_windowed`] exploits this: it detects the
//! components ([`coflow_components`]), builds one sub-model per component
//! *on the global interval grid* (so each sub-model is literally the
//! monolithic model restricted to the block — same feasible intervals, same
//! pruning, same within-row term order), solves the blocks concurrently via
//! [`coflow_lp::try_solve_cached_batch`], and merges `C̄` by original coflow
//! index. With at most one component it delegates to the monolithic path
//! verbatim.
//!
//! The module also provides a *sparse* model builder
//! ([`build_interval_model_sparse`]) that constructs the identical model
//! from per-coflow port-load lists in `O(nnz · L)` instead of `O(n·m·L)`,
//! which is what the million-coflow scale runner feeds from streamed
//! coflows without ever materializing dense `m × m` demand matrices.

use crate::instance::Instance;
use crate::intervals::GeometricGrid;
use crate::ordering::permutation_by_key;
use crate::relax::{build_interval_model_with_grid, try_solve_interval_lp_with, LpRelaxation};
use coflow_lp::{LpError, Model, SimplexOptions, Solution, VarId};

/// Minimal union-find over port nodes (ingress `i` ↔ node `i`, egress `j`
/// ↔ node `m + j`).
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut r = x;
        while self.parent[r] as usize != r {
            r = self.parent[r] as usize;
        }
        let mut c = x;
        while self.parent[c] as usize != r {
            let next = self.parent[c] as usize;
            self.parent[c] = r as u32;
            c = next;
        }
        r
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo as u32;
        }
    }
}

/// Groups coflow indices by port-connected component: two coflows belong to
/// the same group iff they are linked through a chain of shared ingress or
/// egress ports. Groups are ordered by smallest member index; members are
/// ascending. Coflows with empty demand form singleton groups.
fn components_from_ports<F, I>(n: usize, m: usize, ports_of: F) -> Vec<Vec<usize>>
where
    F: Fn(usize) -> I,
    I: IntoIterator<Item = usize>,
{
    let mut uf = UnionFind::new(2 * m);
    // Anchor port of each coflow (any of its ports), or None if empty.
    let mut anchor: Vec<Option<usize>> = Vec::with_capacity(n);
    for k in 0..n {
        let mut first: Option<usize> = None;
        for p in ports_of(k) {
            match first {
                None => first = Some(p),
                Some(f) => uf.union(f, p),
            }
        }
        anchor.push(first);
    }
    let mut group_of_root: Vec<Option<usize>> = vec![None; 2 * m];
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (k, a) in anchor.iter().enumerate() {
        match a {
            None => groups.push(vec![k]),
            Some(p) => {
                let root = uf.find(*p);
                match group_of_root[root] {
                    Some(g) => groups[g].push(k),
                    None => {
                        group_of_root[root] = Some(groups.len());
                        groups.push(vec![k]);
                    }
                }
            }
        }
    }
    groups
}

/// Port-connected components of an instance's coflows (see
/// [`components_from_ports`] for the ordering contract).
pub fn coflow_components(instance: &Instance) -> Vec<Vec<usize>> {
    let m = instance.ports();
    components_from_ports(instance.len(), m, |k| {
        let d = &instance.coflow(k).demand;
        d.nonzero_entries()
            .flat_map(move |(i, j, _)| [i, m + j])
            .collect::<Vec<_>>()
    })
}

/// Windowed variant of [`crate::relax::try_solve_interval_lp_with`]: solves
/// the interval-indexed LP per port-connected coflow group (concurrently)
/// instead of monolithically. Because the monolithic LP is block-diagonal
/// over the groups and every sub-model is built on the *global* grid, the
/// result — fractional completions, ordering, and lower bound — matches the
/// monolithic solve (bit-identical per-block solutions; the lower bound is
/// the sum of block optima). With at most one group this *is* the
/// monolithic path.
pub fn try_solve_interval_lp_windowed(
    instance: &Instance,
    opts: &SimplexOptions,
) -> Result<LpRelaxation, LpError> {
    let groups = coflow_components(instance);
    if groups.len() <= 1 {
        return try_solve_interval_lp_with(instance, opts);
    }
    let _span = obs::span("lp.windowed");
    obs::counter_add("lp.windowed.groups", groups.len() as u64);
    let grid = GeometricGrid::doubling(instance.naive_horizon());
    let m = instance.ports();
    let mut models = Vec::with_capacity(groups.len());
    let mut var_maps = Vec::with_capacity(groups.len());
    for group in &groups {
        let coflows = group.iter().map(|&k| instance.coflow(k).clone()).collect();
        let sub = Instance::new(m, coflows);
        let (model, vars) = build_interval_model_with_grid(&sub, &grid);
        models.push(model);
        var_maps.push(vars);
    }
    let solutions = coflow_lp::try_solve_cached_batch(&models, opts, coflow_lp::global_cache());
    let mut approx = vec![0.0f64; instance.len()];
    let mut lower_bound = 0.0f64;
    let mut iterations = 0usize;
    let mut rows_pruned = 0usize;
    for ((group, vars), sol) in groups.iter().zip(&var_maps).zip(solutions) {
        let sol = sol?;
        for (local, &k) in group.iter().enumerate() {
            approx[k] = vars[local]
                .iter()
                .map(|&(l, v)| grid.point(l - 1) * sol.x[v.0])
                .sum();
        }
        lower_bound += sol.objective;
        iterations += sol.iterations;
        rows_pruned += sol.presolve_rows_removed;
    }
    let order = permutation_by_key(instance.len(), &approx);
    Ok(LpRelaxation {
        approx_completion: approx,
        order,
        lower_bound,
        iterations,
        rows_pruned,
    })
}

/// Per-coflow port loads in sparse form: what the interval model needs from
/// a coflow, without its dense `m × m` demand matrix.
#[derive(Clone, Debug)]
pub struct SparseCoflowLoads {
    /// Release date `r_k`.
    pub release: u64,
    /// Weight `w_k` (positive, finite).
    pub weight: f64,
    /// Load `ρ_k` (maximum row/column sum of the demand matrix).
    pub rho: u64,
    /// Nonzero ingress-port loads `(i, Σ_j d_{ij})`, ascending by port.
    pub ingress: Vec<(usize, u64)>,
    /// Nonzero egress-port loads `(j, Σ_i d_{ij})`, ascending by port.
    pub egress: Vec<(usize, u64)>,
}

impl SparseCoflowLoads {
    /// Earliest possible completion `r_k + ρ_k` (at least 1).
    pub fn earliest_completion(&self) -> u64 {
        (self.release + self.rho).max(1)
    }

    /// Total demand units `Σ_{ij} d_{ij}`.
    pub fn total_units(&self) -> u64 {
        self.ingress.iter().map(|&(_, d)| d).sum()
    }
}

/// Horizon bound matching [`Instance::naive_horizon`]: latest release plus
/// total demand units across all coflows.
pub fn sparse_naive_horizon(coflows: &[SparseCoflowLoads]) -> u64 {
    let released = coflows.iter().map(|c| c.release).max().unwrap_or(0);
    let total: u64 = coflows.iter().map(|c| c.total_units()).sum();
    (released + total).max(1)
}

/// Port-connected components of a sparse window: coflows sharing an
/// ingress or egress port land in one group, ordered by smallest member
/// index (the grouping [`try_solve_windowed_sparse`] shards its solves
/// by; exposed so the scale runner can report how much block sharding a
/// window actually yields).
pub fn sparse_components(m: usize, coflows: &[SparseCoflowLoads]) -> Vec<Vec<usize>> {
    components_from_ports(coflows.len(), m, |k| {
        let c = &coflows[k];
        c.ingress
            .iter()
            .map(|&(i, _)| i)
            .chain(c.egress.iter().map(|&(j, _)| m + j))
            .collect::<Vec<_>>()
    })
}

/// Sparse twin of [`crate::relax::build_interval_model_with_grid`]: builds
/// the *identical* model (same variables, same rows in the same order, same
/// pruning) from per-coflow port-load lists. Cost is `O(nnz · L)` in the
/// number of nonzero (coflow, port) loads rather than `O(n · m · L)`.
pub fn build_interval_model_sparse(
    m: usize,
    coflows: &[SparseCoflowLoads],
    grid: &GeometricGrid,
) -> (Model, Vec<Vec<(usize, VarId)>>) {
    let _span = obs::span("lp.build_model");
    let n = coflows.len();
    let big_l = grid.num_intervals();
    let mut model = Model::new();

    let mut vars: Vec<Vec<(usize, VarId)>> = Vec::with_capacity(n);
    for c in coflows {
        let first = grid.first_feasible(c.earliest_completion() as f64);
        let mut per_coflow = Vec::with_capacity(big_l - first + 1);
        for l in first..=big_l {
            let cost = c.weight * grid.point(l - 1);
            let v = model.add_var(cost);
            model.set_implied_upper(v, 1.0);
            per_coflow.push((l, v));
        }
        vars.push(per_coflow);
    }

    for per_coflow in &vars {
        let terms = per_coflow.iter().map(|&(_, v)| (v, 1.0)).collect();
        model.add_eq(terms, 1.0);
    }

    // Postings per port: (k, load) ascending by k — pushing in coflow order
    // preserves exactly the ascending-k term order of the dense builder.
    let mut ingress_postings: Vec<Vec<(usize, u64)>> = vec![Vec::new(); m];
    let mut egress_postings: Vec<Vec<(usize, u64)>> = vec![Vec::new(); m];
    for (k, c) in coflows.iter().enumerate() {
        for &(p, d) in &c.ingress {
            ingress_postings[p].push((k, d));
        }
        for &(p, d) in &c.egress {
            egress_postings[p].push((k, d));
        }
    }

    for postings in [&ingress_postings, &egress_postings] {
        for per_port in postings.iter() {
            for l in 1..=big_l {
                let tau_l = grid.point(l);
                let mut eligible: f64 = 0.0;
                let mut terms: Vec<(VarId, f64)> = Vec::new();
                for &(k, d) in per_port {
                    let mut any = false;
                    for &(u, v) in &vars[k] {
                        if u <= l {
                            terms.push((v, d as f64));
                            any = true;
                        } else {
                            break;
                        }
                    }
                    if any {
                        eligible += d as f64;
                    }
                }
                if eligible <= tau_l {
                    continue;
                }
                model.add_le(terms, tau_l);
            }
        }
    }
    (model, vars)
}

/// Windowed solve over sparse coflow loads: shards by port-connected
/// component, solves the blocks concurrently, and returns the merged
/// relaxation. This is the ordering stage of the streaming scale runner —
/// it never touches a dense demand matrix.
pub fn try_solve_windowed_sparse(
    m: usize,
    coflows: &[SparseCoflowLoads],
    opts: &SimplexOptions,
) -> Result<LpRelaxation, LpError> {
    let _span = obs::span("lp.windowed");
    let grid = GeometricGrid::doubling(sparse_naive_horizon(coflows));
    let groups = sparse_components(m, coflows);
    obs::counter_add("lp.windowed.groups", groups.len() as u64);
    let mut models = Vec::with_capacity(groups.len());
    let mut var_maps = Vec::with_capacity(groups.len());
    for group in &groups {
        let members: Vec<SparseCoflowLoads> =
            group.iter().map(|&k| coflows[k].clone()).collect();
        let (model, vars) = build_interval_model_sparse(m, &members, &grid);
        models.push(model);
        var_maps.push(vars);
    }
    let solutions = coflow_lp::try_solve_cached_batch(&models, opts, coflow_lp::global_cache());
    let mut approx = vec![0.0f64; coflows.len()];
    let mut lower_bound = 0.0f64;
    let mut iterations = 0usize;
    let mut rows_pruned = 0usize;
    for ((group, vars), sol) in groups.iter().zip(&var_maps).zip(solutions) {
        let sol: Solution = sol?;
        for (local, &k) in group.iter().enumerate() {
            approx[k] = vars[local]
                .iter()
                .map(|&(l, v)| grid.point(l - 1) * sol.x[v.0])
                .sum();
        }
        lower_bound += sol.objective;
        iterations += sol.iterations;
        rows_pruned += sol.presolve_rows_removed;
    }
    let order = permutation_by_key(coflows.len(), &approx);
    Ok(LpRelaxation {
        approx_completion: approx,
        order,
        lower_bound,
        iterations,
        rows_pruned,
    })
}

/// Extracts [`SparseCoflowLoads`] from a dense instance (tests and small
/// cells; the streaming path constructs them directly from sparse flows).
pub fn sparse_loads_of(instance: &Instance) -> Vec<SparseCoflowLoads> {
    let m = instance.ports();
    (0..instance.len())
        .map(|k| {
            let c = instance.coflow(k);
            let ingress: Vec<(usize, u64)> = (0..m)
                .filter_map(|i| {
                    let d = c.demand.row_sum(i);
                    (d > 0).then_some((i, d))
                })
                .collect();
            let egress: Vec<(usize, u64)> = c
                .demand
                .col_sums()
                .into_iter()
                .enumerate()
                .filter(|&(_, d)| d > 0)
                .collect();
            SparseCoflowLoads {
                release: c.release,
                weight: c.weight,
                rho: c.demand.load(),
                ingress,
                egress,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coflow::Coflow;
    use crate::relax::{build_interval_model, solve_interval_lp};
    use coflow_matching::IntMatrix;

    fn two_disjoint_pairs() -> Instance {
        // Coflows 0,2 share ingress port 0; coflow 1 lives on ports {2,3}.
        let mut a = IntMatrix::zeros(4);
        a[(0, 1)] = 3;
        let mut b = IntMatrix::zeros(4);
        b[(2, 3)] = 2;
        let mut c = IntMatrix::zeros(4);
        c[(0, 0)] = 4;
        Instance::new(
            4,
            vec![
                Coflow::new(0, a),
                Coflow::new(1, b).with_weight(2.0),
                Coflow::new(2, c),
            ],
        )
    }

    #[test]
    fn components_group_by_shared_ports() {
        let inst = two_disjoint_pairs();
        let groups = coflow_components(&inst);
        assert_eq!(groups, vec![vec![0, 2], vec![1]]);
    }

    #[test]
    fn windowed_matches_monolithic_on_disjoint_groups() {
        let inst = two_disjoint_pairs();
        let mono = solve_interval_lp(&inst);
        let win = try_solve_interval_lp_windowed(&inst, &SimplexOptions::default())
            .unwrap_or_else(|e| panic!("windowed solve failed: {}", e));
        assert_eq!(win.order, mono.order);
        for (a, b) in win
            .approx_completion
            .iter()
            .zip(&mono.approx_completion)
        {
            assert!((a - b).abs() < 1e-9, "C-bar mismatch: {} vs {}", a, b);
        }
        assert!((win.lower_bound - mono.lower_bound).abs() < 1e-9);
    }

    #[test]
    fn windowed_delegates_on_single_component() {
        // Both coflows share port 0: one group, literally the monolithic path.
        let mut a = IntMatrix::zeros(2);
        a[(0, 1)] = 1;
        let mut b = IntMatrix::zeros(2);
        b[(0, 0)] = 2;
        let inst = Instance::new(2, vec![Coflow::new(0, a), Coflow::new(1, b)]);
        assert_eq!(coflow_components(&inst).len(), 1);
        let mono = solve_interval_lp(&inst);
        let win = try_solve_interval_lp_windowed(&inst, &SimplexOptions::default())
            .unwrap_or_else(|e| panic!("windowed solve failed: {}", e));
        assert_eq!(win.order, mono.order);
        assert_eq!(win.approx_completion, mono.approx_completion);
        assert_eq!(win.lower_bound.to_bits(), mono.lower_bound.to_bits());
    }

    #[test]
    fn sparse_model_is_identical_to_dense() {
        let inst = two_disjoint_pairs();
        let (dense_model, dense_vars, grid) = build_interval_model(&inst);
        let sparse = sparse_loads_of(&inst);
        let (sparse_model, sparse_vars) = build_interval_model_sparse(4, &sparse, &grid);
        assert_eq!(sparse_model, dense_model);
        assert_eq!(sparse_vars, dense_vars);
    }

    #[test]
    fn sparse_windowed_matches_dense_windowed() {
        let inst = two_disjoint_pairs();
        let dense = try_solve_interval_lp_windowed(&inst, &SimplexOptions::default())
            .unwrap_or_else(|e| panic!("dense windowed failed: {}", e));
        let sparse = sparse_loads_of(&inst);
        let win = try_solve_windowed_sparse(4, &sparse, &SimplexOptions::default())
            .unwrap_or_else(|e| panic!("sparse windowed failed: {}", e));
        assert_eq!(win.order, dense.order);
        for (a, b) in win.approx_completion.iter().zip(&dense.approx_completion) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_demand_coflow_is_a_singleton_group() {
        let z = IntMatrix::zeros(2);
        let mut a = IntMatrix::zeros(2);
        a[(0, 0)] = 1;
        let inst = Instance::new(2, vec![Coflow::new(0, z), Coflow::new(1, a)]);
        let groups = coflow_components(&inst);
        assert_eq!(groups, vec![vec![0], vec![1]]);
        let win = try_solve_interval_lp_windowed(&inst, &SimplexOptions::default())
            .unwrap_or_else(|e| panic!("windowed solve failed: {}", e));
        assert_eq!(win.approx_completion.len(), 2);
    }
}
