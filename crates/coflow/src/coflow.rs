//! The coflow abstraction.
//!
//! A coflow (Chowdhury & Stoica) is a collection of parallel flows with a
//! shared performance goal, represented here — as in the paper — by an
//! `m × m` integer demand matrix `D = (d_ij)`, a release date `r_k`, and a
//! positive weight `w_k`.

use coflow_matching::IntMatrix;

/// A single coflow: demand matrix, release date, weight, and a stable id.
#[derive(Clone, Debug, PartialEq)]
pub struct Coflow {
    /// Stable identifier (the paper's `H_A` order is by trace id).
    pub id: usize,
    /// Demand matrix: `demand[(i, j)]` data units from ingress `i` to
    /// egress `j`.
    pub demand: IntMatrix,
    /// Release date `r_k`; the coflow may first be served in slot `r_k + 1`.
    pub release: u64,
    /// Positive weight `w_k` in the objective `Σ w_k C_k`.
    pub weight: f64,
}

impl Coflow {
    /// Creates a coflow with release 0 and unit weight.
    pub fn new(id: usize, demand: IntMatrix) -> Self {
        Coflow {
            id,
            demand,
            release: 0,
            weight: 1.0,
        }
    }

    /// Sets the release date (builder style).
    pub fn with_release(mut self, release: u64) -> Self {
        self.release = release;
        self
    }

    /// Sets the weight (builder style). Panics unless positive and finite.
    pub fn with_weight(mut self, weight: f64) -> Self {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "coflow weights must be positive and finite"
        );
        self.weight = weight;
        self
    }

    /// The load `ρ(D)` of Eq. (18): max over row and column sums. The
    /// minimum number of slots needed to clear this coflow alone.
    pub fn load(&self) -> u64 {
        self.demand.load()
    }

    /// Total data units.
    pub fn total_units(&self) -> u64 {
        self.demand.total()
    }

    /// Number of nonzero flows (the paper's `M0` width statistic).
    pub fn width(&self) -> usize {
        self.demand.nonzero_count()
    }

    /// Earliest possible completion time `r_k + ρ(D^{(k)})`.
    pub fn earliest_completion(&self) -> u64 {
        self.release + self.load()
    }
}

/// Serialization-friendly mirror of [`Coflow`] with a sparse demand listing.
/// Used by the workloads crate for trace I/O.
#[derive(Clone, Debug, PartialEq)]
pub struct CoflowRecord {
    /// Stable identifier.
    pub id: usize,
    /// Fabric size.
    pub m: usize,
    /// Sparse demands `(src, dst, units)`.
    pub flows: Vec<(usize, usize, u64)>,
    /// Release date.
    pub release: u64,
    /// Weight.
    pub weight: f64,
}

impl From<&Coflow> for CoflowRecord {
    fn from(c: &Coflow) -> Self {
        CoflowRecord {
            id: c.id,
            m: c.demand.dim(),
            flows: c.demand.nonzero_entries().collect(),
            release: c.release,
            weight: c.weight,
        }
    }
}

impl From<&CoflowRecord> for Coflow {
    fn from(r: &CoflowRecord) -> Self {
        let mut demand = IntMatrix::zeros(r.m);
        for &(i, j, u) in &r.flows {
            demand[(i, j)] += u;
        }
        Coflow {
            id: r.id,
            demand,
            release: r.release,
            weight: r.weight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_derived_quantities() {
        let c = Coflow::new(3, IntMatrix::from_nested(&[[1, 2], [2, 1]]))
            .with_release(5)
            .with_weight(2.5);
        assert_eq!(c.load(), 3);
        assert_eq!(c.total_units(), 6);
        assert_eq!(c.width(), 4);
        assert_eq!(c.earliest_completion(), 8);
        assert_eq!(c.weight, 2.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let _ = Coflow::new(0, IntMatrix::zeros(2)).with_weight(0.0);
    }

    #[test]
    fn record_round_trip() {
        let c = Coflow::new(7, IntMatrix::from_nested(&[[0, 4], [1, 0]]))
            .with_release(2)
            .with_weight(3.0);
        let rec = CoflowRecord::from(&c);
        assert_eq!(rec.flows.len(), 2);
        let back = Coflow::from(&rec);
        assert_eq!(back, c);
    }
}
