//! Coflow scheduling to minimize total weighted completion time — a full
//! reproduction of Qiu, Stein & Zhong (SPAA 2015).
//!
//! The paper gives the first polynomial-time constant-factor approximation
//! algorithms (deterministic 67/3, randomized 9 + 16√2/3) for scheduling
//! *coflows* — parallel flow collections on an `m × m` non-blocking switch —
//! with release dates. This crate implements the complete pipeline:
//!
//! 1. [`relax`] — the interval-indexed LP relaxation (§2.1), solved by the
//!    from-scratch simplex in `coflow-lp`, yielding fractional completion
//!    times `C̄_k` and the ordering (15); also the time-indexed (LP-EXP)
//!    lower bound;
//! 2. [`ordering`] — the ordering stage (`H_A`, `H_ρ`, `H_LP`);
//! 3. [`grouping`] — Step 2 of Algorithm 2: partition by cumulative maximum
//!    loads `V_k` into doubling intervals;
//! 4. [`sched`] — the scheduling stage: per-group Birkhoff–von Neumann
//!    schedules with optional backfilling, the randomized grid variant, a
//!    greedy baseline, and an exact solver for tiny instances;
//! 5. [`bounds`] / [`verify`] — lower bounds and end-to-end schedule
//!    verification.
//!
//! ```
//! use coflow::{Coflow, Instance};
//! use coflow::sched::{run, AlgorithmSpec};
//! use coflow_matching::IntMatrix;
//!
//! // Figure 1: one 2×2 MapReduce shuffle; Algorithm 2 completes it in the
//! // minimum possible 3 slots.
//! let shuffle = Coflow::new(0, IntMatrix::from_nested(&[[1, 2], [2, 1]]));
//! let instance = Instance::new(2, vec![shuffle]);
//! let outcome = run(&instance, &AlgorithmSpec::algorithm2());
//! assert_eq!(outcome.completions, vec![3]);
//! ```

// Library code must justify every panic: unwraps/expects surface as clippy
// warnings (tests and benches are exempt via the cfg gate).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
pub mod analysis;
pub mod bounds;
pub mod coflow;
pub mod diagnostics;
pub mod error;
pub mod grouping;
pub mod instance;
pub mod intervals;
pub mod ordering;
pub mod relax;
pub mod sched;
pub mod verify;
pub mod windowed;

pub use crate::analysis::{analyze, serialization_overhead, ScheduleAnalysis};
pub use crate::coflow::{Coflow, CoflowRecord};
pub use crate::diagnostics::{
    diagnose, diagnose_faulty, Anomaly, CoflowReport, Detector, DiagnosticsConfig,
    ScheduleDiagnostics, Severity,
};
pub use crate::error::SchedError;
pub use crate::grouping::{group_by_doubling, group_by_grid, Groups};
pub use crate::instance::Instance;
pub use crate::intervals::GeometricGrid;
pub use crate::ordering::{
    compute_order, permutation_by_key, try_compute_order, try_compute_order_with, OrderRule,
};
pub use crate::relax::{
    solve_interval_lp, solve_time_indexed_lp, solve_with_grid, try_solve_interval_lp,
    try_solve_interval_lp_with, LpExpRelaxation, LpRelaxation,
};
pub use crate::sched::engine::{
    greedy_match, run_policy, run_policy_with_faults, BvnBatchPolicy, Decision, Engine,
    EngineError, EpochState, GreedyPolicy, HeartbeatPacer, OnlineOptions, OnlineRhoPolicy,
    Policy, ResilientPolicy,
};
pub use crate::sched::snapshot::{
    ActiveBatchState, EngineSnapshot, PolicyState, SNAPSHOT_SCHEMA,
};
pub use crate::sched::watchdog::{WatchdogConfig, WatchdogPolicy, LADDER_TIER_BASE};
pub use crate::sched::greedy::{run_greedy, run_greedy_with_faults};
pub use crate::sched::ordered::{
    run_im_purohit, run_im_purohit_with_faults, run_shafiee_ghaderi,
    run_shafiee_ghaderi_with_faults, ImPurohitPolicy, ShafieeGhaderiPolicy,
};
pub use crate::sched::registry::{
    PolicyCaps, PolicyEntry, PolicyRegistry, DEPRECATED_FLAG_ALIASES,
};
pub use crate::sched::online::{run_online, run_online_opts, run_online_with_faults};
pub use crate::sched::recovery::{
    run_with_faults, run_with_faults_strict, verify_faulty_outcome, FaultyOutcome,
};
pub use crate::sched::resilient::{
    fallback_chain, run_resilient, run_resilient_chain, FailedAttempt, ResilientOutcome,
};
pub use crate::sched::{
    run, run_randomized, run_with_order, run_with_order_ext, run_with_order_grid,
    run_with_order_opts, AlgorithmSpec, ExecOptions, ScheduleOutcome,
};
pub use crate::verify::{verify_outcome, VerifyError, VerifyReport};
pub use crate::windowed::{
    build_interval_model_sparse, coflow_components, sparse_loads_of, sparse_naive_horizon,
    try_solve_interval_lp_windowed, try_solve_windowed_sparse, SparseCoflowLoads,
};

/// The deterministic approximation ratio proven in Theorem 1.
pub const DETERMINISTIC_RATIO: f64 = 67.0 / 3.0;

/// The deterministic ratio for zero release dates (Corollary 1).
pub const DETERMINISTIC_RATIO_NO_RELEASE: f64 = 64.0 / 3.0;

/// The randomized approximation ratio of Theorem 2: `9 + 16√2/3`.
pub fn randomized_ratio() -> f64 {
    9.0 + 16.0 * std::f64::consts::SQRT_2 / 3.0
}

/// The randomized ratio for zero release dates (Corollary 2): `8 + 16√2/3`.
pub fn randomized_ratio_no_release() -> f64 {
    8.0 + 16.0 * std::f64::consts::SQRT_2 / 3.0
}
