//! Post-hoc analysis of schedule outcomes.
//!
//! Quantifies *why* a schedule costs what it costs: per-coflow slowdown
//! against the `r_k + ρ_k` ideal, utilization, and the group-serialization
//! overhead `Σ_u ρ(group_u) / V_max` that drives the gap between
//! Algorithm 2 and fluid lower bounds (see EXPERIMENTS.md).

use crate::grouping::Groups;
use crate::instance::Instance;
use crate::sched::ScheduleOutcome;
use coflow_netsim::trace_stats;

/// Per-coflow and aggregate diagnostics for a schedule.
#[derive(Clone, Debug)]
pub struct ScheduleAnalysis {
    /// Per-coflow slowdown `C_k / (r_k + ρ_k)` (1.0 = individually optimal).
    pub slowdowns: Vec<f64>,
    /// Mean slowdown.
    pub mean_slowdown: f64,
    /// Maximum slowdown and the coflow attaining it.
    pub max_slowdown: (f64, usize),
    /// Weighted mean slowdown (weights = objective weights).
    pub weighted_mean_slowdown: f64,
    /// Fabric utilization over the makespan (`moved / (makespan · m)`).
    pub fabric_utilization: f64,
    /// Offered-but-idle pair slots inside runs (augmentation padding that
    /// backfilling did not absorb).
    pub idle_pair_slots: u64,
    /// Schedule makespan.
    pub makespan: u64,
    /// The coflow permutation the scheduler committed to (priority order,
    /// indices into the instance) — surfaced so reports can show *which*
    /// ordering produced these numbers.
    pub order: Vec<usize>,
}

/// Analyzes `outcome` against `instance`.
pub fn analyze(instance: &Instance, outcome: &ScheduleOutcome) -> ScheduleAnalysis {
    let slowdowns: Vec<f64> = instance
        .coflows()
        .iter()
        .zip(&outcome.completions)
        .map(|(c, &t)| {
            let ideal = c.earliest_completion().max(1);
            t as f64 / ideal as f64
        })
        .collect();
    let n = slowdowns.len().max(1);
    let mean = slowdowns.iter().sum::<f64>() / n as f64;
    let (max_idx, &max_val) = slowdowns
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap_or((0, &1.0));
    let wsum: f64 = instance.coflows().iter().map(|c| c.weight).sum();
    let wmean = instance
        .coflows()
        .iter()
        .zip(&slowdowns)
        .map(|(c, &s)| c.weight * s)
        .sum::<f64>()
        / wsum.max(f64::MIN_POSITIVE);
    let stats = trace_stats(&outcome.trace);
    ScheduleAnalysis {
        slowdowns,
        mean_slowdown: mean,
        max_slowdown: (max_val, max_idx),
        weighted_mean_slowdown: wmean,
        fabric_utilization: stats.fabric_utilization,
        idle_pair_slots: stats.idle_pair_slots,
        makespan: stats.makespan,
        order: outcome.order.clone(),
    }
}

/// The group-serialization overhead of a grouping: `Σ_u ρ(aggregate_u)`
/// relative to `V_max` (1.0 = no overhead; Algorithm 2 guarantees ≤ 2 for
/// doubling grids by the geometric-sum argument in Proposition 1).
pub fn serialization_overhead(instance: &Instance, groups: &Groups) -> f64 {
    let v_max = groups
        .cumulative_loads
        .iter()
        .copied()
        .max()
        .unwrap_or(0)
        .max(1);
    let rho_sum: u64 = groups
        .groups
        .iter()
        .map(|g| instance.aggregate_demand(g).load())
        .sum();
    rho_sum as f64 / v_max as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coflow::Coflow;
    use crate::grouping::group_by_doubling;
    use crate::sched::{run, AlgorithmSpec};
    use coflow_matching::IntMatrix;

    #[test]
    fn lone_coflow_has_unit_slowdown() {
        let inst = Instance::new(
            2,
            vec![Coflow::new(0, IntMatrix::from_nested(&[[1, 2], [2, 1]]))],
        );
        let out = run(&inst, &AlgorithmSpec::algorithm2());
        let a = analyze(&inst, &out);
        assert_eq!(a.slowdowns, vec![1.0]);
        assert_eq!(a.mean_slowdown, 1.0);
        assert_eq!(a.makespan, 3);
        assert!(a.fabric_utilization > 0.99);
    }

    #[test]
    fn contended_coflows_slow_down() {
        let mk = |id| Coflow::new(id, IntMatrix::from_nested(&[[2, 0], [0, 0]]));
        let inst = Instance::new(2, vec![mk(0), mk(1)]);
        let out = run(&inst, &AlgorithmSpec::algorithm2());
        let a = analyze(&inst, &out);
        // One of them completes at 4 on a pair of load 2: slowdown 2.
        assert!((a.max_slowdown.0 - 2.0).abs() < 1e-9);
        assert!(a.mean_slowdown > 1.0);
    }

    #[test]
    fn serialization_overhead_is_bounded_for_doubling_grids() {
        let coflows = (1..=6)
            .map(|k| Coflow::new(k, IntMatrix::diagonal(&[k as u64 * 3, 1])))
            .collect();
        let inst = Instance::new(2, coflows);
        let order: Vec<usize> = (0..6).collect();
        let groups = group_by_doubling(&inst, &order);
        let overhead = serialization_overhead(&inst, &groups);
        assert!(overhead >= 1.0 - 1e-9);
        assert!(overhead <= 2.0 + 1e-9, "overhead {}", overhead);
    }

    #[test]
    fn weighted_slowdown_respects_weights() {
        let fast = Coflow::new(0, IntMatrix::diagonal(&[1, 0])).with_weight(100.0);
        let slow = Coflow::new(1, IntMatrix::diagonal(&[1, 0]));
        let inst = Instance::new(2, vec![fast, slow]);
        let out = run(&inst, &AlgorithmSpec::algorithm2());
        let a = analyze(&inst, &out);
        // The heavy coflow is served first: weighted mean is close to 1.
        assert!(a.weighted_mean_slowdown < a.mean_slowdown + 1e-9);
    }
}
