//! Geometric time grids.
//!
//! The interval-indexed relaxation and the grouping step of Algorithm 2 both
//! use time points `τ_0 = 0, τ_l = 2^{l-1}` (`l = 1..L`), with `L` minimal
//! such that `2^{L-1} ≥ T`. The randomized algorithm replaces the
//! deterministic grid with `τ'_l = T₀ · a^{l-1}` where `a = 1 + √2` and
//! `T₀ ~ Uniform[1, a]`.

/// The deterministic doubling grid `0, 1, 2, 4, …, 2^{L-1}`.
///
/// ```
/// use coflow::GeometricGrid;
/// let grid = GeometricGrid::doubling(10);
/// assert_eq!(grid.points(), &[0.0, 1.0, 2.0, 4.0, 8.0, 16.0]);
/// assert_eq!(grid.interval_of(5.0), 4); // 5 lies in (4, 8]
/// ```
#[derive(Clone, Debug)]
pub struct GeometricGrid {
    points: Vec<f64>,
}

impl GeometricGrid {
    /// Builds the deterministic grid covering horizon `t_max ≥ 1`:
    /// `τ_0 = 0`, `τ_l = 2^{l-1}` up to the first point `≥ t_max`.
    pub fn doubling(t_max: u64) -> Self {
        let t_max = t_max.max(1);
        let mut points = vec![0.0, 1.0];
        while points[points.len() - 1] < t_max as f64 {
            let next = points[points.len() - 1] * 2.0;
            points.push(next);
        }
        GeometricGrid { points }
    }

    /// Builds a grid with ratio `a` and offset `t0 ∈ [1, a]`:
    /// `τ'_0 = 0`, `τ'_l = t0 · a^{l-1}` up to the first point `≥ t_max`.
    /// This is the randomized algorithm's grid (§3.2); pass `t0 = 1, a = 2`
    /// to recover the deterministic grid.
    pub fn scaled(t_max: u64, t0: f64, a: f64) -> Self {
        assert!(a > 1.0, "grid ratio must exceed 1");
        assert!(t0 > 0.0, "grid offset must be positive");
        let t_max = t_max.max(1);
        let mut points = vec![0.0, t0];
        while points[points.len() - 1] < t_max as f64 {
            let next = points[points.len() - 1] * a;
            points.push(next);
        }
        GeometricGrid { points }
    }

    /// Number of intervals `L` (points are `τ_0 … τ_L`).
    pub fn num_intervals(&self) -> usize {
        self.points.len() - 1
    }

    /// Time point `τ_l`.
    pub fn point(&self, l: usize) -> f64 {
        self.points[l]
    }

    /// All points `τ_0 … τ_L`.
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// The 1-based index `l` of the interval `(τ_{l-1}, τ_l]` containing
    /// `v > 0`. Panics for `v = 0` (0 lies on the boundary `τ_0`) or `v`
    /// beyond the horizon.
    pub fn interval_of(&self, v: f64) -> usize {
        assert!(v > 0.0, "interval lookup requires a positive value");
        // points are strictly increasing after index 0.
        let l = self
            .points
            .iter()
            .position(|&p| v <= p)
            .unwrap_or_else(|| panic!("value {} beyond grid horizon {}", v, self.points[self.points.len() - 1]));
        debug_assert!(l >= 1);
        l
    }

    /// Smallest `l` with `τ_l ≥ v` — the first interval in which an event of
    /// size `v` can complete.
    pub fn first_feasible(&self, v: f64) -> usize {
        if v <= 0.0 {
            return 1;
        }
        self.interval_of(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubling_grid_shape() {
        let g = GeometricGrid::doubling(9);
        assert_eq!(g.points(), &[0.0, 1.0, 2.0, 4.0, 8.0, 16.0]);
        assert_eq!(g.num_intervals(), 5);
    }

    #[test]
    fn doubling_handles_degenerate_horizon() {
        let g = GeometricGrid::doubling(0);
        assert_eq!(g.points(), &[0.0, 1.0]);
        let g1 = GeometricGrid::doubling(1);
        assert_eq!(g1.points(), &[0.0, 1.0]);
    }

    #[test]
    fn interval_lookup() {
        let g = GeometricGrid::doubling(16);
        assert_eq!(g.interval_of(1.0), 1); // (0, 1]
        assert_eq!(g.interval_of(1.5), 2); // (1, 2]
        assert_eq!(g.interval_of(2.0), 2);
        assert_eq!(g.interval_of(3.0), 3); // (2, 4]
        assert_eq!(g.interval_of(16.0), 5);
    }

    #[test]
    #[should_panic(expected = "beyond grid horizon")]
    fn interval_lookup_out_of_range() {
        let g = GeometricGrid::doubling(4);
        let _ = g.interval_of(100.0);
    }

    #[test]
    fn scaled_grid_matches_randomized_spec() {
        let a = 1.0 + std::f64::consts::SQRT_2;
        let g = GeometricGrid::scaled(100, 1.7, a);
        assert_eq!(g.point(0), 0.0);
        assert!((g.point(1) - 1.7).abs() < 1e-12);
        assert!((g.point(2) - 1.7 * a).abs() < 1e-12);
        assert!(*g.points().last().unwrap() >= 100.0);
    }

    #[test]
    fn scaled_with_ratio_two_equals_doubling() {
        let g1 = GeometricGrid::doubling(32);
        let g2 = GeometricGrid::scaled(32, 1.0, 2.0);
        assert_eq!(g1.points(), g2.points());
    }

    #[test]
    fn first_feasible_of_zero_is_one() {
        let g = GeometricGrid::doubling(8);
        assert_eq!(g.first_feasible(0.0), 1);
        assert_eq!(g.first_feasible(5.0), 4);
    }
}
