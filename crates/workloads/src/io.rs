//! Trace serialization: JSON (via serde) and a simple CSV flow listing.
//!
//! The CSV format is one flow per line — `coflow_id,src,dst,mb,release,
//! weight` — the shape cluster traces are usually published in, so real
//! traces can be dropped in without code changes.

use coflow::{Coflow, CoflowRecord, Instance};
use coflow_matching::IntMatrix;
use std::collections::BTreeMap;

/// Accumulator for one coflow while parsing CSV: `(flows, release, weight)`.
type CsvCoflow = (Vec<(usize, usize, u64)>, u64, f64);

/// Serializes an instance to pretty JSON.
pub fn to_json(instance: &Instance) -> String {
    let records: Vec<CoflowRecord> = instance.coflows().iter().map(CoflowRecord::from).collect();
    serde_json::to_string_pretty(&(instance.ports(), records)).expect("serialization cannot fail")
}

/// Parses an instance from [`to_json`] output.
pub fn from_json(s: &str) -> Result<Instance, String> {
    let (ports, records): (usize, Vec<CoflowRecord>) =
        serde_json::from_str(s).map_err(|e| e.to_string())?;
    let coflows: Vec<Coflow> = records.iter().map(Coflow::from).collect();
    Ok(Instance::new(ports, coflows))
}

/// Serializes an instance to CSV (`coflow_id,src,dst,mb,release,weight`,
/// header included).
pub fn to_csv(instance: &Instance) -> String {
    let mut out = String::from("coflow_id,src,dst,mb,release,weight\n");
    for c in instance.coflows() {
        for (i, j, d) in c.demand.nonzero_entries() {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                c.id, i, j, d, c.release, c.weight
            ));
        }
    }
    out
}

/// Parses an instance from CSV produced by [`to_csv`] (or any file in the
/// same format). `ports` must be at least one larger than the largest port
/// index referenced.
pub fn from_csv(ports: usize, s: &str) -> Result<Instance, String> {
    // coflow id -> (flows, release, weight)
    let mut map: BTreeMap<usize, CsvCoflow> = BTreeMap::new();
    for (lineno, line) in s.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || (lineno == 0 && line.starts_with("coflow_id")) {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 6 {
            return Err(format!("line {}: expected 6 fields", lineno + 1));
        }
        let parse_usize = |f: &str, what: &str| {
            f.parse::<usize>()
                .map_err(|_| format!("line {}: bad {}", lineno + 1, what))
        };
        let id = parse_usize(fields[0], "coflow_id")?;
        let src = parse_usize(fields[1], "src")?;
        let dst = parse_usize(fields[2], "dst")?;
        let mb = fields[3]
            .parse::<u64>()
            .map_err(|_| format!("line {}: bad mb", lineno + 1))?;
        let release = fields[4]
            .parse::<u64>()
            .map_err(|_| format!("line {}: bad release", lineno + 1))?;
        let weight = fields[5]
            .parse::<f64>()
            .map_err(|_| format!("line {}: bad weight", lineno + 1))?;
        if src >= ports || dst >= ports {
            return Err(format!("line {}: port out of range", lineno + 1));
        }
        let entry = map.entry(id).or_insert_with(|| (Vec::new(), release, weight));
        entry.0.push((src, dst, mb));
        entry.1 = release;
        entry.2 = weight;
    }
    let coflows = map
        .into_iter()
        .map(|(id, (flows, release, weight))| {
            let mut demand = IntMatrix::zeros(ports);
            for (i, j, d) in flows {
                demand[(i, j)] += d;
            }
            Coflow::new(id, demand)
                .with_release(release)
                .with_weight(weight)
        })
        .collect();
    Ok(Instance::new(ports, coflows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facebook::{generate_trace, TraceConfig};

    #[test]
    fn json_round_trip() {
        let inst = generate_trace(&TraceConfig::small(5));
        let json = to_json(&inst);
        let back = from_json(&json).expect("parse");
        assert_eq!(back.len(), inst.len());
        for (a, b) in inst.coflows().iter().zip(back.coflows()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn csv_round_trip() {
        let inst = generate_trace(&TraceConfig::small(6));
        let csv = to_csv(&inst);
        let back = from_csv(inst.ports(), &csv).expect("parse");
        assert_eq!(back.len(), inst.len());
        for (a, b) in inst.coflows().iter().zip(back.coflows()) {
            assert_eq!(a.demand, b.demand);
            assert_eq!(a.release, b.release);
        }
    }

    #[test]
    fn csv_rejects_bad_lines() {
        assert!(from_csv(4, "coflow_id,src,dst,mb,release,weight\n1,2\n").is_err());
        assert!(from_csv(4, "0,9,0,5,0,1.0\n").is_err()); // port out of range
        assert!(from_csv(4, "0,1,0,xyz,0,1.0\n").is_err());
    }

    #[test]
    fn csv_accumulates_duplicate_pairs() {
        let csv = "0,1,2,5,0,1.0\n0,1,2,3,0,1.0\n";
        let inst = from_csv(4, csv).expect("parse");
        assert_eq!(inst.coflow(0).demand[(1, 2)], 8);
    }
}
