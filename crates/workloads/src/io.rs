//! Trace serialization: JSON (hand-rolled, see [`crate::json`]) and a
//! simple CSV flow listing.
//!
//! The CSV format is one flow per line — `coflow_id,src,dst,mb,release,
//! weight` — the shape cluster traces are usually published in, so real
//! traces can be dropped in without code changes. Malformed rows are
//! rejected with a [`TraceError`] carrying the line number and offending
//! field.

use crate::error::TraceError;
use crate::json::{self, JsonValue};
use coflow::{Coflow, CoflowRecord, Instance};
use coflow_matching::IntMatrix;
use std::collections::BTreeMap;

/// Accumulator for one coflow while parsing CSV: `(flows, release, weight)`.
type CsvCoflow = (Vec<(usize, usize, u64)>, u64, f64);

/// Serializes an instance to pretty JSON: `[ports, [record, ...]]` where
/// each record is `{"id", "m", "flows": [[src, dst, units], ...],
/// "release", "weight"}`.
pub fn to_json(instance: &Instance) -> String {
    let mut out = String::new();
    out.push_str(&format!("[\n  {},\n  [", instance.ports()));
    for (idx, c) in instance.coflows().iter().enumerate() {
        let rec = CoflowRecord::from(c);
        if idx > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"id\": {}, \"m\": {}, \"flows\": [", rec.id, rec.m));
        for (fi, (i, j, u)) in rec.flows.iter().enumerate() {
            if fi > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("[{}, {}, {}]", i, j, u));
        }
        out.push_str(&format!(
            "], \"release\": {}, \"weight\": {}}}",
            rec.release,
            json::fmt_f64(rec.weight)
        ));
    }
    out.push_str("\n  ]\n]\n");
    out
}

/// Extracts a nonnegative integer field from a JSON record.
fn json_uint(v: &JsonValue, line: usize, field: &str) -> Result<u64, TraceError> {
    match v {
        JsonValue::Num(lexeme) => lexeme.parse::<u64>().map_err(|_| TraceError::BadField {
            line,
            field: field.to_string(),
            value: lexeme.clone(),
            message: "expected a nonnegative integer".to_string(),
        }),
        other => Err(TraceError::BadField {
            line,
            field: field.to_string(),
            value: other.kind().to_string(),
            message: "expected a number".to_string(),
        }),
    }
}

/// Looks up `field` in a record object (line 1 reported for missing keys —
/// the document is machine-written, so per-record line tracking stops at
/// parse time).
fn json_field<'v>(
    record: &'v JsonValue,
    field: &str,
    record_idx: usize,
) -> Result<&'v JsonValue, TraceError> {
    record.get(field).ok_or_else(|| TraceError::Syntax {
        line: 1,
        message: format!("record {}: missing field '{}'", record_idx, field),
    })
}

/// Parses an instance from [`to_json`] output.
pub fn from_json(s: &str) -> Result<Instance, TraceError> {
    let doc = json::parse(s)?;
    let JsonValue::Arr(top) = &doc else {
        return Err(TraceError::Syntax {
            line: 1,
            message: format!("expected top-level array, found {}", doc.kind()),
        });
    };
    if top.len() != 2 {
        return Err(TraceError::Syntax {
            line: 1,
            message: format!("expected [ports, records], found {} elements", top.len()),
        });
    }
    let ports = json_uint(&top[0], 1, "ports")? as usize;
    let JsonValue::Arr(records) = &top[1] else {
        return Err(TraceError::Syntax {
            line: 1,
            message: format!("expected records array, found {}", top[1].kind()),
        });
    };
    let mut coflows = Vec::with_capacity(records.len());
    for (ri, record) in records.iter().enumerate() {
        if !matches!(record, JsonValue::Obj(_)) {
            return Err(TraceError::Syntax {
                line: 1,
                message: format!("record {}: expected object, found {}", ri, record.kind()),
            });
        }
        let id = json_uint(json_field(record, "id", ri)?, 1, "id")? as usize;
        let m = json_uint(json_field(record, "m", ri)?, 1, "m")? as usize;
        let release = json_uint(json_field(record, "release", ri)?, 1, "release")?;
        let weight = match json_field(record, "weight", ri)? {
            JsonValue::Num(lexeme) => {
                let w = lexeme.parse::<f64>().map_err(|_| TraceError::BadField {
                    line: 1,
                    field: "weight".to_string(),
                    value: lexeme.clone(),
                    message: "expected a number".to_string(),
                })?;
                if !(w > 0.0 && w.is_finite()) {
                    return Err(TraceError::BadField {
                        line: 1,
                        field: "weight".to_string(),
                        value: lexeme.clone(),
                        message: "weights must be positive and finite".to_string(),
                    });
                }
                w
            }
            other => {
                return Err(TraceError::BadField {
                    line: 1,
                    field: "weight".to_string(),
                    value: other.kind().to_string(),
                    message: "expected a number".to_string(),
                })
            }
        };
        let JsonValue::Arr(flows) = json_field(record, "flows", ri)? else {
            return Err(TraceError::Syntax {
                line: 1,
                message: format!("record {}: 'flows' is not an array", ri),
            });
        };
        let mut rec_flows = Vec::with_capacity(flows.len());
        for flow in flows {
            let JsonValue::Arr(triple) = flow else {
                return Err(TraceError::Syntax {
                    line: 1,
                    message: format!("record {}: flow entry is not an array", ri),
                });
            };
            if triple.len() != 3 {
                return Err(TraceError::Syntax {
                    line: 1,
                    message: format!(
                        "record {}: flow entry has {} elements (expected 3)",
                        ri,
                        triple.len()
                    ),
                });
            }
            let src = json_uint(&triple[0], 1, "src")? as usize;
            let dst = json_uint(&triple[1], 1, "dst")? as usize;
            let units = json_uint(&triple[2], 1, "mb")?;
            for (field, value) in [("src", src), ("dst", dst)] {
                if value >= m.min(ports) {
                    return Err(TraceError::PortRange {
                        line: 1,
                        field: field.to_string(),
                        value,
                        ports: m.min(ports),
                    });
                }
            }
            rec_flows.push((src, dst, units));
        }
        let rec = CoflowRecord { id, m, flows: rec_flows, release, weight };
        coflows.push(Coflow::from(&rec));
    }
    Ok(Instance::new(ports, coflows))
}

/// Serializes an instance to CSV (`coflow_id,src,dst,mb,release,weight`,
/// header included).
pub fn to_csv(instance: &Instance) -> String {
    let mut out = String::from("coflow_id,src,dst,mb,release,weight\n");
    for c in instance.coflows() {
        for (i, j, d) in c.demand.nonzero_entries() {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                c.id, i, j, d, c.release, c.weight
            ));
        }
    }
    out
}

/// Parses an instance from CSV produced by [`to_csv`] (or any file in the
/// same format). `ports` must be at least one larger than the largest port
/// index referenced.
pub fn from_csv(ports: usize, s: &str) -> Result<Instance, TraceError> {
    // coflow id -> (flows, release, weight)
    let mut map: BTreeMap<usize, CsvCoflow> = BTreeMap::new();
    for (lineno, line) in s.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || (lineno == 0 && line.starts_with("coflow_id")) {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 6 {
            return Err(TraceError::Syntax {
                line: lineno + 1,
                message: format!("expected 6 fields, found {}", fields.len()),
            });
        }
        let parse_usize = |f: &str, what: &str| {
            f.parse::<usize>().map_err(|_| TraceError::BadField {
                line: lineno + 1,
                field: what.to_string(),
                value: f.to_string(),
                message: "expected a nonnegative integer".to_string(),
            })
        };
        let id = parse_usize(fields[0], "coflow_id")?;
        let src = parse_usize(fields[1], "src")?;
        let dst = parse_usize(fields[2], "dst")?;
        let mb = fields[3].parse::<u64>().map_err(|_| TraceError::BadField {
            line: lineno + 1,
            field: "mb".to_string(),
            value: fields[3].to_string(),
            message: "expected a nonnegative integer".to_string(),
        })?;
        let release = fields[4].parse::<u64>().map_err(|_| TraceError::BadField {
            line: lineno + 1,
            field: "release".to_string(),
            value: fields[4].to_string(),
            message: "expected a nonnegative integer".to_string(),
        })?;
        let weight = fields[5].parse::<f64>().map_err(|_| TraceError::BadField {
            line: lineno + 1,
            field: "weight".to_string(),
            value: fields[5].to_string(),
            message: "expected a number".to_string(),
        })?;
        if !(weight > 0.0 && weight.is_finite()) {
            return Err(TraceError::BadField {
                line: lineno + 1,
                field: "weight".to_string(),
                value: fields[5].to_string(),
                message: "weights must be positive and finite".to_string(),
            });
        }
        for (field, value) in [("src", src), ("dst", dst)] {
            if value >= ports {
                return Err(TraceError::PortRange {
                    line: lineno + 1,
                    field: field.to_string(),
                    value,
                    ports,
                });
            }
        }
        let entry = map.entry(id).or_insert_with(|| (Vec::new(), release, weight));
        entry.0.push((src, dst, mb));
        entry.1 = release;
        entry.2 = weight;
    }
    let coflows = map
        .into_iter()
        .map(|(id, (flows, release, weight))| {
            let mut demand = IntMatrix::zeros(ports);
            for (i, j, d) in flows {
                demand[(i, j)] += d;
            }
            Coflow::new(id, demand)
                .with_release(release)
                .with_weight(weight)
        })
        .collect();
    Ok(Instance::new(ports, coflows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facebook::{generate_trace, TraceConfig};

    #[test]
    fn json_round_trip() {
        let inst = generate_trace(&TraceConfig::small(5));
        let json = to_json(&inst);
        let back = from_json(&json).expect("parse");
        assert_eq!(back.len(), inst.len());
        for (a, b) in inst.coflows().iter().zip(back.coflows()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn csv_round_trip() {
        let inst = generate_trace(&TraceConfig::small(6));
        let csv = to_csv(&inst);
        let back = from_csv(inst.ports(), &csv).expect("parse");
        assert_eq!(back.len(), inst.len());
        for (a, b) in inst.coflows().iter().zip(back.coflows()) {
            assert_eq!(a.demand, b.demand);
            assert_eq!(a.release, b.release);
        }
    }

    #[test]
    fn csv_rejects_bad_lines() {
        assert!(from_csv(4, "coflow_id,src,dst,mb,release,weight\n1,2\n").is_err());
        assert!(from_csv(4, "0,9,0,5,0,1.0\n").is_err()); // port out of range
        assert!(from_csv(4, "0,1,0,xyz,0,1.0\n").is_err());
    }

    #[test]
    fn csv_errors_carry_line_and_field() {
        // Row 3 (after the header) has a non-numeric `mb` field.
        let csv = "coflow_id,src,dst,mb,release,weight\n0,1,2,5,0,1.0\n0,2,1,oops,0,1.0\n";
        let err = from_csv(4, csv).unwrap_err();
        assert_eq!(
            err,
            TraceError::BadField {
                line: 3,
                field: "mb".to_string(),
                value: "oops".to_string(),
                message: "expected a nonnegative integer".to_string(),
            }
        );
        assert!(err.to_string().contains("line 3"), "{}", err);
        assert!(err.to_string().contains("mb"), "{}", err);

        let err = from_csv(4, "0,1,2,5,0,1.0\n0,7,1,2,0,1.0\n").unwrap_err();
        assert_eq!(
            err,
            TraceError::PortRange {
                line: 2,
                field: "src".to_string(),
                value: 7,
                ports: 4,
            }
        );
    }

    #[test]
    fn corrupt_json_trace_file_is_rejected() {
        let inst = generate_trace(&TraceConfig::small(4));
        let json = to_json(&inst);

        // Structural corruption: truncate mid-document.
        let truncated = &json[..json.len() / 2];
        assert!(matches!(
            from_json(truncated),
            Err(TraceError::Syntax { .. })
        ));

        // Field corruption: negative src index in a flow triple.
        let corrupted = json.replacen("\"flows\": [[", "\"flows\": [[-", 1);
        if corrupted != json {
            let err = from_json(&corrupted).unwrap_err();
            assert!(
                matches!(err, TraceError::BadField { ref field, .. } if field == "src"),
                "{}",
                err
            );
        }

        // Semantic corruption: zero weight.
        let corrupted = json.replacen("\"weight\": 1", "\"weight\": 0", 1);
        if corrupted != json {
            let err = from_json(&corrupted).unwrap_err();
            assert!(
                matches!(err, TraceError::BadField { ref field, .. } if field == "weight"),
                "{}",
                err
            );
        }
    }

    #[test]
    fn csv_accumulates_duplicate_pairs() {
        let csv = "0,1,2,5,0,1.0\n0,1,2,3,0,1.0\n";
        let inst = from_csv(4, csv).expect("parse");
        assert_eq!(inst.coflow(0).demand[(1, 2)], 8);
    }
}
