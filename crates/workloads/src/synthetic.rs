//! Simple synthetic instance families for tests, property tests, and
//! ablation benchmarks.

use coflow::{Coflow, Instance};
use coflow_matching::IntMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform random instance: each coflow has `density · m²` expected nonzero
/// flows with sizes in `1..=max_size`.
pub fn random_instance(
    m: usize,
    n: usize,
    density: f64,
    max_size: u64,
    seed: u64,
) -> Instance {
    assert!((0.0..=1.0).contains(&density));
    let mut rng = StdRng::seed_from_u64(seed);
    let coflows = (0..n)
        .map(|id| {
            let mut d = IntMatrix::zeros(m);
            for i in 0..m {
                for j in 0..m {
                    if rng.gen_bool(density) {
                        d[(i, j)] = rng.gen_range(1..=max_size);
                    }
                }
            }
            // Guarantee at least one flow so every coflow is nontrivial.
            if d.is_zero() {
                d[(rng.gen_range(0..m), rng.gen_range(0..m))] = rng.gen_range(1..=max_size);
            }
            Coflow::new(id, d)
        })
        .collect();
    Instance::new(m, coflows)
}

/// Random instance with release dates drawn uniformly from `0..=max_release`
/// and weights uniform in `[0.5, 4.0]`.
pub fn random_instance_with_releases(
    m: usize,
    n: usize,
    density: f64,
    max_size: u64,
    max_release: u64,
    seed: u64,
) -> Instance {
    let base = random_instance(m, n, density, max_size, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    let coflows = base
        .coflows()
        .iter()
        .map(|c| {
            c.clone()
                .with_release(rng.gen_range(0..=max_release))
                .with_weight(rng.gen_range(0.5..4.0))
        })
        .collect();
    Instance::new(m, coflows)
}

/// Diagonal (concurrent-open-shop) instance: job `k` needs
/// `p ∈ 1..=max_size` on each machine independently, zero with probability
/// `1 - density`.
pub fn random_diagonal_instance(
    m: usize,
    n: usize,
    density: f64,
    max_size: u64,
    seed: u64,
) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let coflows = (0..n)
        .map(|id| {
            let diag: Vec<u64> = (0..m)
                .map(|_| {
                    if rng.gen_bool(density) {
                        rng.gen_range(1..=max_size)
                    } else {
                        0
                    }
                })
                .collect();
            let mut diag = diag;
            if diag.iter().all(|&d| d == 0) {
                diag[rng.gen_range(0..m)] = rng.gen_range(1..=max_size);
            }
            Coflow::new(id, IntMatrix::diagonal(&diag))
        })
        .collect();
    Instance::new(m, coflows)
}

/// The Appendix B counter-example pair (3×3, two coflows) showing the `V_k`
/// lower bounds cannot all be tight simultaneously.
pub fn appendix_b_instance() -> Instance {
    let d1 = IntMatrix::from_nested(&[[9, 0, 9], [0, 9, 0], [9, 0, 9]]);
    let d2 = IntMatrix::from_nested(&[[1, 10, 1], [10, 1, 10], [1, 10, 1]]);
    Instance::new(3, vec![Coflow::new(0, d1), Coflow::new(1, d2)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_instance_has_no_empty_coflows() {
        let inst = random_instance(5, 20, 0.05, 10, 3);
        assert!(inst.coflows().iter().all(|c| c.total_units() > 0));
    }

    #[test]
    fn density_one_is_fully_dense() {
        let inst = random_instance(3, 2, 1.0, 5, 1);
        assert!(inst.coflows().iter().all(|c| c.width() == 9));
    }

    #[test]
    fn releases_and_weights_in_range() {
        let inst = random_instance_with_releases(4, 10, 0.3, 8, 100, 2);
        for c in inst.coflows() {
            assert!(c.release <= 100);
            assert!((0.5..4.0).contains(&c.weight));
        }
    }

    #[test]
    fn diagonal_instances_are_diagonal() {
        let inst = random_diagonal_instance(4, 10, 0.5, 9, 5);
        for c in inst.coflows() {
            for (i, j, _) in c.demand.nonzero_entries() {
                assert_eq!(i, j);
            }
        }
    }

    #[test]
    fn appendix_b_loads_match_the_paper() {
        let inst = appendix_b_instance();
        // t1 = max(I_1, J_1) = 18, t2 = max(I_2, J_2) = 30.
        let v = inst.cumulative_loads(&[0, 1]);
        assert_eq!(v, vec![18, 30]);
    }
}
