//! Streaming, spatially-skewed workload generation.
//!
//! The dense generator ([`crate::facebook`]) materializes an entire
//! [`coflow::Instance`] — `n` coflows × an `m × m` demand matrix each —
//! which caps it at a few hundred coflows before memory dominates. The
//! scale experiments need *millions* of coflows over fabrics of up to
//! 10,000 ports, so this module yields coflows one at a time as an
//! iterator of sparse flow lists: a 10⁶-coflow run holds exactly one
//! window of coflows in memory at any moment, and the full trace never
//! exists.
//!
//! Spatial skew follows the parsimon-eval flowgen/spatial recipe: ports
//! are carved into racks, each coflow picks a home rack, and every
//! endpoint draw keeps probability `rack_affinity` inside the home rack
//! (uniform over the remaining fabric otherwise). Affinity 0 reproduces
//! the uniform port-sampling of the dense generator; affinity near 1
//! concentrates load on rack-local bottlenecks the way real cluster
//! traces do.
//!
//! Determinism: the stream is a pure function of its config — one
//! `StdRng` seeded from `config.seed`, drawn in a fixed per-coflow order —
//! so any prefix of the stream is reproducible regardless of how far the
//! consumer iterates.

use crate::distributions::{BoundedPareto, LogNormal};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One streamed coflow: sparse flows plus the scalars the scheduler needs.
/// `m × m` dense form is intentionally absent.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseCoflow {
    /// Sequential id (position in the stream).
    pub id: usize,
    /// Flows as `(src, dst, units)`, grouped by source in draw order;
    /// pairs are distinct.
    pub flows: Vec<(usize, usize, u64)>,
    /// Release slot (nondecreasing along the stream).
    pub release: u64,
    /// Completion-time weight.
    pub weight: f64,
}

/// Nonzero per-port loads `(port, load)`, ascending by port.
pub type PortLoads = Vec<(usize, u64)>;

impl SparseCoflow {
    /// Load `ρ` — maximum per-port load — computed from the sparse flows.
    pub fn rho(&self) -> u64 {
        let (ingress, egress) = self.port_loads();
        ingress
            .iter()
            .chain(&egress)
            .map(|&(_, d)| d)
            .max()
            .unwrap_or(0)
    }

    /// Total units across all flows.
    pub fn total_units(&self) -> u64 {
        self.flows.iter().map(|&(_, _, u)| u).sum()
    }

    /// Nonzero per-port loads `(port, load)`, ascending by port:
    /// `(ingress, egress)`.
    pub fn port_loads(&self) -> (PortLoads, PortLoads) {
        let mut ingress: PortLoads = Vec::new();
        let mut egress: PortLoads = Vec::new();
        for &(i, j, u) in &self.flows {
            match ingress.binary_search_by_key(&i, |&(p, _)| p) {
                Ok(pos) => ingress[pos].1 += u,
                Err(pos) => ingress.insert(pos, (i, u)),
            }
            match egress.binary_search_by_key(&j, |&(p, _)| p) {
                Ok(pos) => egress[pos].1 += u,
                Err(pos) => egress.insert(pos, (j, u)),
            }
        }
        (ingress, egress)
    }
}

/// Configuration of a [`CoflowStream`].
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Fabric size (ingress = egress = `ports`).
    pub ports: usize,
    /// Number of coflows to yield.
    pub num_coflows: usize,
    /// RNG seed; the stream is a pure function of the config.
    pub seed: u64,
    /// Ports per rack (last rack may be smaller). 0 disables racks.
    pub rack_size: usize,
    /// Probability that an endpoint lands in the coflow's home rack.
    pub rack_affinity: f64,
    /// Log-normal `μ` of per-flow size (units).
    pub flow_size_mu: f64,
    /// Log-normal `σ` of per-flow size.
    pub flow_size_sigma: f64,
    /// Per-flow size cap.
    pub max_flow_size: u64,
    /// Bounded-Pareto tail index for mapper/reducer fan-out.
    pub fanout_alpha: f64,
    /// Fan-out cap (≤ ports; 0 means `ports`).
    pub max_fanout: usize,
    /// Mean slots between arrivals (exponential inter-arrival).
    pub mean_interarrival: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            ports: 1000,
            num_coflows: 10_000,
            seed: 0x5CA1E,
            rack_size: 40,
            rack_affinity: 0.6,
            flow_size_mu: 2.3,
            flow_size_sigma: 1.3,
            max_flow_size: 2048,
            fanout_alpha: 1.1,
            max_fanout: 64,
            mean_interarrival: 8.0,
        }
    }
}

/// Iterator yielding [`SparseCoflow`]s; see the module docs.
pub struct CoflowStream {
    cfg: StreamConfig,
    rng: StdRng,
    size_dist: LogNormal,
    fan_dist: BoundedPareto,
    arrival: f64,
    next_id: usize,
    // Endpoint-draw scratch reused across coflows.
    src: Vec<usize>,
    dst: Vec<usize>,
}

impl CoflowStream {
    /// Opens a stream over `cfg`.
    pub fn new(cfg: StreamConfig) -> Self {
        assert!(cfg.ports > 0, "stream needs at least one port");
        let max_fan = if cfg.max_fanout == 0 {
            cfg.ports
        } else {
            cfg.max_fanout.min(cfg.ports)
        };
        let size_dist = LogNormal::new(cfg.flow_size_mu, cfg.flow_size_sigma);
        let fan_dist = BoundedPareto::new(1.0, max_fan as f64, cfg.fanout_alpha);
        CoflowStream {
            rng: StdRng::seed_from_u64(cfg.seed),
            size_dist,
            fan_dist,
            arrival: 0.0,
            next_id: 0,
            src: Vec::new(),
            dst: Vec::new(),
            cfg,
        }
    }

    /// Number of racks the fabric is carved into (≥ 1).
    pub fn num_racks(&self) -> usize {
        if self.cfg.rack_size == 0 {
            1
        } else {
            self.cfg.ports.div_ceil(self.cfg.rack_size)
        }
    }

    /// Draws `count` distinct endpoints into `out`: each draw keeps
    /// probability `rack_affinity` inside `[rack_lo, rack_hi)` and is
    /// uniform over the fabric otherwise, rejecting duplicates.
    fn draw_endpoints(&mut self, count: usize, rack_lo: usize, rack_hi: usize, into_src: bool) {
        let m = self.cfg.ports;
        let out = if into_src { &mut self.src } else { &mut self.dst };
        out.clear();
        while out.len() < count {
            let p = if self.cfg.rack_size > 0
                && rack_hi > rack_lo
                && self.rng.gen::<f64>() < self.cfg.rack_affinity
            {
                self.rng.gen_range(rack_lo..rack_hi)
            } else {
                self.rng.gen_range(0..m)
            };
            if !out.contains(&p) {
                out.push(p);
            }
        }
    }
}

impl Iterator for CoflowStream {
    type Item = SparseCoflow;

    fn next(&mut self) -> Option<SparseCoflow> {
        if self.next_id >= self.cfg.num_coflows {
            return None;
        }
        let m = self.cfg.ports;
        let mappers = (self.fan_dist.sample(&mut self.rng).round() as usize).clamp(1, m);
        let reducers = (self.fan_dist.sample(&mut self.rng).round() as usize).clamp(1, m);
        // Home rack of this coflow.
        let (rack_lo, rack_hi) = if self.cfg.rack_size > 0 {
            let rack = self.rng.gen_range(0..self.num_racks());
            let lo = rack * self.cfg.rack_size;
            (lo, (lo + self.cfg.rack_size).min(m))
        } else {
            (0, 0)
        };
        self.draw_endpoints(mappers, rack_lo, rack_hi, true);
        self.draw_endpoints(reducers, rack_lo, rack_hi, false);
        let mut flows = Vec::with_capacity(mappers * reducers);
        for si in 0..mappers {
            for di in 0..reducers {
                let mb = self.size_dist.sample(&mut self.rng);
                let units = (mb.round() as u64).clamp(1, self.cfg.max_flow_size);
                flows.push((self.src[si], self.dst[di], units));
            }
        }
        let u: f64 = self.rng.gen::<f64>().max(1e-12);
        self.arrival += -self.cfg.mean_interarrival * u.ln();
        let coflow = SparseCoflow {
            id: self.next_id,
            flows,
            release: self.arrival as u64,
            weight: 1.0,
        };
        self.next_id += 1;
        Some(coflow)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.cfg.num_coflows - self.next_id;
        (left, Some(left))
    }
}

impl ExactSizeIterator for CoflowStream {}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> StreamConfig {
        StreamConfig {
            ports: 50,
            num_coflows: 200,
            seed: 11,
            rack_size: 10,
            rack_affinity: 0.7,
            max_fanout: 8,
            ..StreamConfig::default()
        }
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let a: Vec<SparseCoflow> = CoflowStream::new(small_cfg()).collect();
        let b: Vec<SparseCoflow> = CoflowStream::new(small_cfg()).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn prefix_is_independent_of_consumption_depth() {
        let full: Vec<SparseCoflow> = CoflowStream::new(small_cfg()).collect();
        let prefix: Vec<SparseCoflow> = CoflowStream::new(small_cfg()).take(17).collect();
        assert_eq!(&full[..17], &prefix[..]);
    }

    #[test]
    fn flows_are_distinct_pairs_within_bounds() {
        for c in CoflowStream::new(small_cfg()) {
            let mut pairs: Vec<(usize, usize)> =
                c.flows.iter().map(|&(i, j, _)| (i, j)).collect();
            let len = pairs.len();
            pairs.sort_unstable();
            pairs.dedup();
            assert_eq!(pairs.len(), len, "duplicate pair in coflow {}", c.id);
            for &(i, j, u) in &c.flows {
                assert!(i < 50 && j < 50);
                assert!(u >= 1 && u <= StreamConfig::default().max_flow_size);
            }
        }
    }

    #[test]
    fn releases_are_nondecreasing() {
        let mut last = 0u64;
        for c in CoflowStream::new(small_cfg()) {
            assert!(c.release >= last);
            last = c.release;
        }
    }

    #[test]
    fn rho_matches_port_loads() {
        for c in CoflowStream::new(small_cfg()).take(50) {
            let (ing, eg) = c.port_loads();
            let max = ing.iter().chain(&eg).map(|&(_, d)| d).max().unwrap_or(0);
            assert_eq!(c.rho(), max);
            let total_in: u64 = ing.iter().map(|&(_, d)| d).sum();
            assert_eq!(total_in, c.total_units());
        }
    }

    #[test]
    fn rack_affinity_concentrates_endpoints() {
        // With affinity 1.0 and fan-outs capped at the rack size, every
        // endpoint of a coflow stays inside one rack.
        let cfg = StreamConfig {
            ports: 100,
            num_coflows: 50,
            seed: 3,
            rack_size: 10,
            rack_affinity: 1.0,
            max_fanout: 5,
            ..StreamConfig::default()
        };
        for c in CoflowStream::new(cfg) {
            let racks: std::collections::BTreeSet<usize> = c
                .flows
                .iter()
                .flat_map(|&(i, j, _)| [i / 10, j / 10])
                .collect();
            assert_eq!(racks.len(), 1, "coflow {} spans racks {:?}", c.id, racks);
        }
    }

    #[test]
    fn zero_affinity_spreads_load() {
        // Uniform sampling across 10 racks: a few hundred endpoints land in
        // nearly every rack.
        let cfg = StreamConfig {
            ports: 100,
            num_coflows: 100,
            seed: 5,
            rack_size: 10,
            rack_affinity: 0.0,
            max_fanout: 8,
            ..StreamConfig::default()
        };
        let racks: std::collections::BTreeSet<usize> = CoflowStream::new(cfg)
            .flat_map(|c| {
                c.flows
                    .iter()
                    .flat_map(|&(i, j, _)| [i / 10, j / 10])
                    .collect::<Vec<_>>()
            })
            .collect();
        assert!(racks.len() >= 8, "only {} racks hit", racks.len());
    }
}
