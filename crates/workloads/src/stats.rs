//! Descriptive statistics of coflow traces.
//!
//! Used to sanity-check that the synthetic generator reproduces the
//! qualitative features of production traces the paper relies on: skewed
//! widths, heavy-tailed sizes, and load concentration on a few coflows.

use coflow::{Coflow, Instance};

/// Summary statistics of a trace.
#[derive(Clone, Debug)]
pub struct TraceStats {
    /// Number of coflows.
    pub num_coflows: usize,
    /// Fabric size.
    pub ports: usize,
    /// Width (`M0`) percentiles: `[min, p25, p50, p75, max]`.
    pub width_percentiles: [usize; 5],
    /// Total-size percentiles in MB: `[min, p25, p50, p75, max]`.
    pub size_percentiles: [u64; 5],
    /// Fraction of the total load carried by the largest 10% of coflows.
    pub top_decile_load_share: f64,
    /// Gini coefficient of per-coflow total sizes (0 = equal, →1 = one
    /// coflow dominates).
    pub size_gini: f64,
    /// Mean ratio `ρ(D) / (total/m)` — how bottlenecked coflows are
    /// relative to perfectly spread demand.
    pub mean_skew: f64,
}

fn percentiles<T: Copy + Ord>(sorted: &[T]) -> [T; 5] {
    let n = sorted.len();
    assert!(n > 0, "percentiles of an empty trace");
    let at = |q: f64| sorted[(((n - 1) as f64) * q).round() as usize];
    [sorted[0], at(0.25), at(0.5), at(0.75), sorted[n - 1]]
}

/// Computes [`TraceStats`] for an instance. Panics on an empty instance.
pub fn trace_stats(instance: &Instance) -> TraceStats {
    let n = instance.len();
    assert!(n > 0, "empty trace");
    let mut widths: Vec<usize> = instance.coflows().iter().map(Coflow::width).collect();
    widths.sort_unstable();
    let mut sizes: Vec<u64> = instance
        .coflows()
        .iter()
        .map(Coflow::total_units)
        .collect();
    sizes.sort_unstable();

    let total: u64 = sizes.iter().sum();
    let top_count = (n as f64 * 0.1).ceil() as usize;
    let top_load: u64 = sizes.iter().rev().take(top_count).sum();

    // Gini via the sorted-rank formula: G = (2 Σ_i i·x_i)/(n Σ x) − (n+1)/n
    // with 1-based ranks over ascending x.
    let gini = if total == 0 {
        0.0
    } else {
        let weighted: f64 = sizes
            .iter()
            .enumerate()
            .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
            .sum();
        (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
    };

    let m = instance.ports() as f64;
    let mean_skew = instance
        .coflows()
        .iter()
        .filter(|c| c.total_units() > 0)
        .map(|c| c.load() as f64 / (c.total_units() as f64 / m))
        .sum::<f64>()
        / instance
            .coflows()
            .iter()
            .filter(|c| c.total_units() > 0)
            .count()
            .max(1) as f64;

    TraceStats {
        num_coflows: n,
        ports: instance.ports(),
        width_percentiles: percentiles(&widths),
        size_percentiles: percentiles(&sizes),
        top_decile_load_share: if total == 0 {
            0.0
        } else {
            top_load as f64 / total as f64
        },
        size_gini: gini,
        mean_skew,
    }
}

/// Renders the statistics as a text block.
pub fn render_stats(s: &TraceStats) -> String {
    format!(
        "trace: {} coflows on {} ports\n\
         \x20 widths  (min/p25/p50/p75/max): {:?}\n\
         \x20 sizes MB(min/p25/p50/p75/max): {:?}\n\
         \x20 top-10% coflows carry {:.1}% of the load; size Gini {:.3}\n\
         \x20 mean bottleneck skew rho/(total/m): {:.2}\n",
        s.num_coflows,
        s.ports,
        s.width_percentiles,
        s.size_percentiles,
        100.0 * s.top_decile_load_share,
        s.size_gini,
        s.mean_skew
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facebook::{generate_trace, TraceConfig};
    use coflow_matching::IntMatrix;

    #[test]
    fn uniform_trace_has_low_gini() {
        let coflows = (0..10)
            .map(|id| Coflow::new(id, IntMatrix::diagonal(&[5, 5])))
            .collect();
        let inst = Instance::new(2, coflows);
        let s = trace_stats(&inst);
        assert!(s.size_gini < 0.01, "gini {}", s.size_gini);
        assert_eq!(s.width_percentiles, [2, 2, 2, 2, 2]);
        assert!((s.top_decile_load_share - 0.1).abs() < 1e-9);
    }

    #[test]
    fn dominated_trace_has_high_gini() {
        let mut coflows: Vec<Coflow> = (0..9)
            .map(|id| Coflow::new(id, IntMatrix::diagonal(&[1, 0])))
            .collect();
        coflows.push(Coflow::new(9, IntMatrix::diagonal(&[1000, 0])));
        let inst = Instance::new(2, coflows);
        let s = trace_stats(&inst);
        assert!(s.size_gini > 0.85, "gini {}", s.size_gini);
        assert!(s.top_decile_load_share > 0.98);
    }

    #[test]
    fn synthetic_trace_is_heavy_tailed_like_the_paper_describes() {
        let inst = generate_trace(&TraceConfig {
            num_coflows: 200,
            ..TraceConfig::default()
        });
        let s = trace_stats(&inst);
        // Load concentration: a small set of shuffles dominates.
        assert!(
            s.top_decile_load_share > 0.5,
            "top decile carries only {:.2}",
            s.top_decile_load_share
        );
        assert!(s.size_gini > 0.6, "gini {}", s.size_gini);
        // Widths span narrow to cluster-wide.
        assert!(s.width_percentiles[0] <= 4);
        assert!(s.width_percentiles[4] >= 100);
    }

    #[test]
    fn skew_of_single_flow_coflows_is_m() {
        // One nonzero entry: rho = total, so skew = m.
        let inst = Instance::new(
            4,
            vec![Coflow::new(0, IntMatrix::diagonal(&[7, 0, 0, 0]))],
        );
        let s = trace_stats(&inst);
        assert!((s.mean_skew - 4.0).abs() < 1e-9);
    }
}
