//! The §4.1 trace filters and weight assignments.

use coflow::{Coflow, Instance};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Keeps only coflows whose width (`M0`, number of nonzero flows) is at
/// least `min_width` — the paper's `M0 ≥ 50 / 40 / 30` filters, motivated by
/// per-coflow scheduling overhead on sparse coflows.
pub fn filter_by_width(instance: &Instance, min_width: usize) -> Instance {
    let coflows: Vec<Coflow> = instance
        .coflows()
        .iter()
        .filter(|c| c.width() >= min_width)
        .cloned()
        .collect();
    Instance::new(instance.ports(), coflows)
}

/// Weight assignment schemes used in §4.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WeightScheme {
    /// All weights 1.
    Equal,
    /// Weights are a uniformly random permutation of `{1, 2, …, n}`.
    RandomPermutation {
        /// Seed for the permutation.
        seed: u64,
    },
}

impl WeightScheme {
    /// Display name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            WeightScheme::Equal => "equal",
            WeightScheme::RandomPermutation { .. } => "random",
        }
    }
}

/// Returns a copy of `instance` with weights assigned per `scheme`.
pub fn assign_weights(instance: &Instance, scheme: WeightScheme) -> Instance {
    let n = instance.len();
    let weights: Vec<f64> = match scheme {
        WeightScheme::Equal => vec![1.0; n],
        WeightScheme::RandomPermutation { seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut perm: Vec<usize> = (1..=n).collect();
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                perm.swap(i, j);
            }
            perm.into_iter().map(|w| w as f64).collect()
        }
    };
    let coflows = instance
        .coflows()
        .iter()
        .zip(weights)
        .map(|(c, w)| c.clone().with_weight(w))
        .collect();
    Instance::new(instance.ports(), coflows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coflow_matching::IntMatrix;

    fn instance_with_widths(widths: &[usize]) -> Instance {
        let m = 10;
        let coflows = widths
            .iter()
            .enumerate()
            .map(|(id, &w)| {
                let mut d = IntMatrix::zeros(m);
                for f in 0..w {
                    d[(f / m, f % m)] = 1;
                }
                Coflow::new(id, d)
            })
            .collect();
        Instance::new(m, coflows)
    }

    #[test]
    fn width_filter_keeps_wide_coflows() {
        let inst = instance_with_widths(&[3, 10, 50, 7]);
        let filtered = filter_by_width(&inst, 10);
        assert_eq!(filtered.len(), 2);
        assert_eq!(filtered.coflow(0).id, 1);
        assert_eq!(filtered.coflow(1).id, 2);
    }

    #[test]
    fn equal_weights_are_unit() {
        let inst = instance_with_widths(&[3, 5]);
        let w = assign_weights(&inst, WeightScheme::Equal);
        assert!(w.coflows().iter().all(|c| c.weight == 1.0));
    }

    #[test]
    fn random_weights_are_a_permutation_of_one_to_n() {
        let inst = instance_with_widths(&[1, 2, 3, 4, 5]);
        let w = assign_weights(&inst, WeightScheme::RandomPermutation { seed: 5 });
        let mut weights: Vec<u64> = w.coflows().iter().map(|c| c.weight as u64).collect();
        weights.sort_unstable();
        assert_eq!(weights, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn random_weights_deterministic_per_seed() {
        let inst = instance_with_widths(&[1, 2, 3, 4]);
        let a = assign_weights(&inst, WeightScheme::RandomPermutation { seed: 9 });
        let b = assign_weights(&inst, WeightScheme::RandomPermutation { seed: 9 });
        assert_eq!(a.weights(), b.weights());
    }
}
