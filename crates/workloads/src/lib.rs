//! Workload generation for the coflow-scheduling experiments.
//!
//! The paper's evaluation uses a proprietary Facebook Hive/MapReduce trace
//! (150 racks, 1 MB-per-slot ports). This crate substitutes a calibrated
//! synthetic generator ([`facebook`]) plus the §4.1 filters and weight
//! schemes ([`filters`]), simple random families for tests and ablations
//! ([`synthetic`]), sampling primitives built on bare `rand`
//! ([`distributions`]), and JSON/CSV trace I/O ([`io`]) so real traces can
//! be substituted when available.

// Library code must justify every panic: unwraps/expects surface as clippy
// warnings (tests and benches are exempt via the cfg gate).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
pub mod distributions;
pub mod error;
pub mod facebook;
pub mod filters;
pub mod io;
pub mod json;
pub mod stats;
pub mod stream;
pub mod synthetic;

pub use error::TraceError;

pub use facebook::{generate_trace, TraceConfig, FACEBOOK_RACKS};
pub use filters::{assign_weights, filter_by_width, WeightScheme};
pub use stats::{render_stats, trace_stats, TraceStats};
pub use stream::{CoflowStream, SparseCoflow, StreamConfig};
pub use synthetic::{
    appendix_b_instance, random_diagonal_instance, random_instance,
    random_instance_with_releases,
};
