//! Synthetic Hive/MapReduce trace calibrated to the paper's Facebook setup.
//!
//! The paper evaluates on a proprietary trace from a 3000-machine,
//! 150-rack Facebook cluster, modeled as a 150×150 switch with 1 Gbps ports;
//! the time unit is 1/128 s, making the port capacity exactly 1 MB per slot,
//! and flow sizes are integer numbers of MB. The trace itself is not
//! public, so this module generates a *synthetic* trace preserving the
//! features the algorithms are sensitive to (documented in DESIGN.md):
//!
//! * shuffle structure — each coflow is a (mappers × reducers) block: a
//!   random subset of source racks sending to a random subset of
//!   destination racks;
//! * heavy-tailed widths — many narrow coflows, few cluster-wide ones, so
//!   the `M0 ≥ {30, 40, 50}` filters of §4.1 retain progressively more
//!   coflows;
//! * heavy-tailed flow sizes — log-normal MB counts, so per-port loads are
//!   skewed and grouping/backfilling have room to help.

use crate::distributions::{BoundedPareto, LogNormal};
use coflow::{Coflow, Instance};
use coflow_matching::IntMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of racks (= ports) in the paper's cluster.
pub const FACEBOOK_RACKS: usize = 150;

/// Configuration of the synthetic trace generator.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Fabric size (the paper's cluster: 150).
    pub ports: usize,
    /// Number of coflows to generate.
    pub num_coflows: usize,
    /// RNG seed (traces are fully deterministic given the config).
    pub seed: u64,
    /// Log-normal `mu` of per-flow MB counts (paper flows span KB–GB; the
    /// default keeps per-port loads in the thousands of slots).
    pub flow_size_mu: f64,
    /// Log-normal `sigma` of per-flow MB counts.
    pub flow_size_sigma: f64,
    /// Cap on a single flow's size in MB (tames the tail so experiment
    /// running time stays bounded).
    pub max_flow_size: u64,
    /// Pareto tail index for the fan-in/fan-out (number of mapper and
    /// reducer racks); smaller = more cluster-wide coflows.
    pub fanout_alpha: f64,
    /// Log-normal `sigma` of a per-coflow size multiplier. The Facebook
    /// trace's coflow sizes span many orders of magnitude — a few shuffles
    /// dominate the total load — which is what makes the *ordering* stage
    /// worth up to ~8× in the paper. 0 disables the multiplier.
    pub coflow_scale_sigma: f64,
    /// All-zero release dates when true (the §4.1 setting).
    pub zero_release: bool,
    /// Mean inter-arrival gap in slots when `zero_release` is false.
    pub mean_interarrival: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            ports: FACEBOOK_RACKS,
            num_coflows: 120,
            seed: 0xFB_2010,
            flow_size_mu: 2.3,   // median ~10 MB
            flow_size_sigma: 1.3,
            max_flow_size: 2048,
            fanout_alpha: 0.9,
            coflow_scale_sigma: 1.6,
            zero_release: true,
            mean_interarrival: 64.0,
        }
    }
}

impl TraceConfig {
    /// A smaller configuration for unit tests and quick benchmarks
    /// (25 ports, 40 coflows, modest flow sizes).
    pub fn small(seed: u64) -> Self {
        TraceConfig {
            ports: 25,
            num_coflows: 40,
            seed,
            flow_size_mu: 1.6,
            flow_size_sigma: 1.0,
            max_flow_size: 256,
            ..TraceConfig::default()
        }
    }
}

/// Generates the synthetic trace as a coflow [`Instance`] with unit weights.
///
/// ```
/// use coflow_workloads::{generate_trace, TraceConfig};
/// let cfg = TraceConfig { ports: 10, num_coflows: 5, ..TraceConfig::default() };
/// let trace = generate_trace(&cfg);
/// assert_eq!(trace.len(), 5);
/// assert!(trace.coflows().iter().all(|c| c.total_units() > 0));
/// // Deterministic per seed:
/// assert_eq!(generate_trace(&cfg).coflow(0), trace.coflow(0));
/// ```
pub fn generate_trace(config: &TraceConfig) -> Instance {
    let _span = obs::span("workloads.generate");
    obs::counter_add("workloads.trace.coflows", config.num_coflows as u64);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let m = config.ports;
    let size_dist = LogNormal::new(config.flow_size_mu, config.flow_size_sigma);
    let scale_dist = LogNormal::new(0.0, config.coflow_scale_sigma);
    let fan_dist = BoundedPareto::new(1.0, m as f64, config.fanout_alpha);

    let mut coflows = Vec::with_capacity(config.num_coflows);
    let mut arrival: f64 = 0.0;
    // Shuffle scratch reused across coflows (the per-coflow `(0..m)`
    // collect used to dominate generator allocations at large m); the RNG
    // draw sequence is unchanged, so traces stay bit-identical.
    let mut src = Vec::with_capacity(m);
    let mut dst = Vec::with_capacity(m);
    for id in 0..config.num_coflows {
        let mappers = (fan_dist.sample(&mut rng).round() as usize).clamp(1, m);
        let reducers = (fan_dist.sample(&mut rng).round() as usize).clamp(1, m);
        sample_ports_into(&mut rng, m, mappers, &mut src);
        sample_ports_into(&mut rng, m, reducers, &mut dst);
        let scale = if config.coflow_scale_sigma > 0.0 {
            scale_dist.sample(&mut rng)
        } else {
            1.0
        };
        let mut demand = IntMatrix::zeros(m);
        for &i in &src {
            for &j in &dst {
                let mb = size_dist.sample(&mut rng) * scale;
                demand[(i, j)] = (mb.round() as u64).clamp(1, config.max_flow_size);
            }
        }
        let release = if config.zero_release {
            0
        } else {
            // Exponential inter-arrivals via inverse transform.
            let u: f64 = rng.gen::<f64>().max(1e-12);
            arrival += -config.mean_interarrival * u.ln();
            arrival as u64
        };
        coflows.push(Coflow::new(id, demand).with_release(release));
    }
    Instance::new(m, coflows)
}

/// Uniform random subset of `count` distinct ports (partial Fisher–Yates)
/// into a caller-owned scratch buffer. Draws exactly `count` values from
/// `rng` regardless of the buffer's prior contents.
pub(crate) fn sample_ports_into<R: Rng + ?Sized>(
    rng: &mut R,
    m: usize,
    count: usize,
    ports: &mut Vec<usize>,
) {
    ports.clear();
    ports.extend(0..m);
    for i in 0..count {
        let j = rng.gen_range(i..m);
        ports.swap(i, j);
    }
    ports.truncate(count);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_for_a_seed() {
        let cfg = TraceConfig::small(7);
        let a = generate_trace(&cfg);
        let b = generate_trace(&cfg);
        for (x, y) in a.coflows().iter().zip(b.coflows()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_trace(&TraceConfig::small(1));
        let b = generate_trace(&TraceConfig::small(2));
        let same = a
            .coflows()
            .iter()
            .zip(b.coflows())
            .all(|(x, y)| x.demand == y.demand);
        assert!(!same);
    }

    #[test]
    fn widths_are_heavy_tailed() {
        let cfg = TraceConfig {
            num_coflows: 300,
            ..TraceConfig::default()
        };
        let inst = generate_trace(&cfg);
        let widths: Vec<usize> = inst.coflows().iter().map(Coflow::width).collect();
        let narrow = widths.iter().filter(|&&w| w < 30).count();
        let wide = widths.iter().filter(|&&w| w >= 50).count();
        assert!(narrow > 100, "expected many narrow coflows, got {}", narrow);
        assert!(wide > 10, "expected some cluster-wide coflows, got {}", wide);
    }

    #[test]
    fn zero_release_config_releases_everything_at_zero() {
        let inst = generate_trace(&TraceConfig::small(3));
        assert!(inst.coflows().iter().all(|c| c.release == 0));
    }

    #[test]
    fn arrivals_are_increasing_when_enabled() {
        let cfg = TraceConfig {
            zero_release: false,
            ports: 20,
            num_coflows: 30,
            ..TraceConfig::small(9)
        };
        let inst = generate_trace(&cfg);
        let releases: Vec<u64> = inst.coflows().iter().map(|c| c.release).collect();
        let mut sorted = releases.clone();
        sorted.sort_unstable();
        assert_eq!(releases, sorted, "arrival order must be nondecreasing");
        assert!(*releases.last().unwrap() > 0);
    }

    #[test]
    fn flow_sizes_respect_cap() {
        let cfg = TraceConfig {
            max_flow_size: 64,
            ..TraceConfig::small(11)
        };
        let inst = generate_trace(&cfg);
        for c in inst.coflows() {
            for (_, _, d) in c.demand.nonzero_entries() {
                assert!((1..=64).contains(&d));
            }
        }
    }
}
