//! Minimal JSON reader/writer for trace files.
//!
//! The parser itself now lives in the dependency-free `obs` crate
//! ([`obs::json`]) so lower layers (e.g. `coflow::sched::snapshot`) can
//! share it; this module re-exports the value type and writers and adapts
//! parse errors into [`TraceError`] so existing trace-I/O callers keep
//! their error surface unchanged.

use crate::error::TraceError;

pub use obs::json::{fmt_f64, quote, JsonValue};

/// Parses a complete JSON document, mapping syntax errors (with their
/// 1-based source line) into [`TraceError::Syntax`].
pub fn parse(s: &str) -> Result<JsonValue, TraceError> {
    obs::json::parse(s)
        .map_err(|e| TraceError::Syntax { line: e.line, message: e.message })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_errors_keep_trace_error_shape() {
        let err = parse("[\n1,\n:bad\n]").unwrap_err();
        assert_eq!(err.line(), 3, "{}", err);
    }

    #[test]
    fn round_trips_through_shared_parser() {
        let v = parse(r#"{"w": 1.5, "ids": [1, 2]}"#).expect("parse");
        assert_eq!(v.get("w"), Some(&JsonValue::Num("1.5".into())));
        assert_eq!(fmt_f64(0.1).parse::<f64>().unwrap(), 0.1);
        assert_eq!(parse(&quote("a\"b")).unwrap(), JsonValue::Str("a\"b".into()));
    }
}
