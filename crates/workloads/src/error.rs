//! Typed errors for trace I/O.

use std::fmt;

/// Error parsing a trace file (CSV or JSON), carrying the 1-based line
/// number and, where known, the offending field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// Structurally malformed input (bad JSON syntax, wrong field count,
    /// missing key, wrong value shape).
    Syntax {
        /// 1-based line of the problem.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A field is present but its value cannot be interpreted.
    BadField {
        /// 1-based line of the row.
        line: usize,
        /// Field name (`src`, `mb`, `weight`, …).
        field: String,
        /// The offending raw value.
        value: String,
        /// Why it was rejected.
        message: String,
    },
    /// A port index is outside the fabric.
    PortRange {
        /// 1-based line of the row.
        line: usize,
        /// Field name (`src` or `dst`).
        field: String,
        /// The out-of-range index.
        value: usize,
        /// Number of ports in the fabric.
        ports: usize,
    },
}

impl TraceError {
    /// The 1-based line the error was detected on.
    pub fn line(&self) -> usize {
        match self {
            TraceError::Syntax { line, .. }
            | TraceError::BadField { line, .. }
            | TraceError::PortRange { line, .. } => *line,
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Syntax { line, message } => {
                write!(f, "line {}: {}", line, message)
            }
            TraceError::BadField { line, field, value, message } => {
                write!(f, "line {}: field '{}' = {:?}: {}", line, field, value, message)
            }
            TraceError::PortRange { line, field, value, ports } => {
                write!(
                    f,
                    "line {}: field '{}' = {} out of range for {}-port fabric",
                    line, field, value, ports
                )
            }
        }
    }
}

impl std::error::Error for TraceError {}
