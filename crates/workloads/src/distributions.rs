//! Sampling primitives built directly on `rand`.
//!
//! The offline crate set has no `rand_distr`, so the heavy-tailed flow-size
//! distributions used by the trace generator (log-normal via Box–Muller,
//! bounded Pareto) are implemented here.

use rand::Rng;

/// Samples a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 = 0 exactly (ln(0)); the half-open range of gen() already
    // excludes 1.0.
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > 1e-300 {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A log-normal distribution parameterized by the underlying normal's
/// `mu` and `sigma`.
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    /// Mean of `ln X`.
    pub mu: f64,
    /// Standard deviation of `ln X`.
    pub sigma: f64,
}

impl LogNormal {
    /// Creates the distribution; `sigma` must be nonnegative.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be nonnegative");
        LogNormal { mu, sigma }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }

    /// Draws an integer sample clamped to `[lo, hi]`.
    pub fn sample_clamped_int<R: Rng + ?Sized>(&self, rng: &mut R, lo: u64, hi: u64) -> u64 {
        let v = self.sample(rng);
        (v.round() as u64).clamp(lo, hi)
    }
}

/// A bounded Pareto distribution on `[lo, hi]` with shape `alpha`.
#[derive(Clone, Copy, Debug)]
pub struct BoundedPareto {
    /// Lower bound (> 0).
    pub lo: f64,
    /// Upper bound (> lo).
    pub hi: f64,
    /// Tail index (> 0); smaller = heavier tail.
    pub alpha: f64,
}

impl BoundedPareto {
    /// Creates the distribution.
    pub fn new(lo: f64, hi: f64, alpha: f64) -> Self {
        assert!(lo > 0.0 && hi > lo && alpha > 0.0);
        BoundedPareto { lo, hi, alpha }
    }

    /// Draws one sample by inverse transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        let la = self.lo.powf(self.alpha);
        let ha = self.hi.powf(self.alpha);
        // Inverse CDF of the bounded Pareto.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {}", mean);
        assert!((var - 1.0).abs() < 0.1, "var {}", var);
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = LogNormal::new(2.0, 0.8);
        let n = 20_000;
        let mut samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!((median - 2f64.exp()).abs() / 2f64.exp() < 0.1, "median {}", median);
    }

    #[test]
    fn lognormal_clamped_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = LogNormal::new(5.0, 3.0);
        for _ in 0..1000 {
            let v = d.sample_clamped_int(&mut rng, 1, 100);
            assert!((1..=100).contains(&v));
        }
    }

    #[test]
    fn pareto_within_bounds_and_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = BoundedPareto::new(1.0, 1000.0, 1.1);
        let n = 10_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| (1.0..=1000.0).contains(&x)));
        // Heavy tail: some mass well above the median.
        let above_100 = samples.iter().filter(|&&x| x > 100.0).count();
        assert!(above_100 > 50, "tail too light: {}", above_100);
    }
}
