//! Property-based tests for trace generation, filtering, weighting, and
//! serialization.

use coflow_workloads::{
    assign_weights, filter_by_width, generate_trace, io, TraceConfig, WeightScheme,
};
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = TraceConfig> {
    (
        2usize..12,  // ports
        1usize..16,  // coflows
        any::<u64>(),
        1u64..64,    // max flow size
        prop_oneof![Just(true), Just(false)],
    )
        .prop_map(|(ports, num_coflows, seed, max_flow_size, zero_release)| TraceConfig {
            ports,
            num_coflows,
            seed,
            max_flow_size,
            zero_release,
            flow_size_mu: 0.8,
            flow_size_sigma: 0.9,
            ..TraceConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generation is deterministic, in-bounds, and structurally sound.
    #[test]
    fn generation_invariants(cfg in config_strategy()) {
        let a = generate_trace(&cfg);
        let b = generate_trace(&cfg);
        prop_assert_eq!(a.len(), cfg.num_coflows);
        prop_assert_eq!(a.ports(), cfg.ports);
        for (x, y) in a.coflows().iter().zip(b.coflows()) {
            prop_assert_eq!(x, y);
        }
        for c in a.coflows() {
            prop_assert!(c.total_units() > 0);
            for (_, _, d) in c.demand.nonzero_entries() {
                prop_assert!(d <= cfg.max_flow_size);
            }
            if cfg.zero_release {
                prop_assert_eq!(c.release, 0);
            }
        }
    }

    /// Filtering keeps exactly the wide-enough coflows and preserves them.
    #[test]
    fn filter_invariants(cfg in config_strategy(), min_width in 0usize..30) {
        let trace = generate_trace(&cfg);
        let filtered = filter_by_width(&trace, min_width);
        prop_assert!(filtered.len() <= trace.len());
        for c in filtered.coflows() {
            prop_assert!(c.width() >= min_width);
        }
        let expected = trace.coflows().iter().filter(|c| c.width() >= min_width).count();
        prop_assert_eq!(filtered.len(), expected);
    }

    /// Random-permutation weights are exactly {1..n} and deterministic.
    #[test]
    fn weight_scheme_invariants(cfg in config_strategy(), wseed in any::<u64>()) {
        let trace = generate_trace(&cfg);
        let weighted = assign_weights(&trace, WeightScheme::RandomPermutation { seed: wseed });
        let mut ws: Vec<u64> = weighted.coflows().iter().map(|c| c.weight as u64).collect();
        ws.sort_unstable();
        let expected: Vec<u64> = (1..=trace.len() as u64).collect();
        prop_assert_eq!(ws, expected);
        // Demands untouched.
        for (a, b) in trace.coflows().iter().zip(weighted.coflows()) {
            prop_assert_eq!(&a.demand, &b.demand);
        }
    }

    /// JSON and CSV round trips are lossless.
    #[test]
    fn io_round_trips(cfg in config_strategy()) {
        let trace = assign_weights(
            &generate_trace(&cfg),
            WeightScheme::RandomPermutation { seed: cfg.seed },
        );
        let via_json = io::from_json(&io::to_json(&trace)).unwrap();
        prop_assert_eq!(via_json.len(), trace.len());
        for (a, b) in trace.coflows().iter().zip(via_json.coflows()) {
            prop_assert_eq!(a, b);
        }
        let via_csv = io::from_csv(trace.ports(), &io::to_csv(&trace)).unwrap();
        prop_assert_eq!(via_csv.len(), trace.len());
        for (a, b) in trace.coflows().iter().zip(via_csv.coflows()) {
            prop_assert_eq!(&a.demand, &b.demand);
            prop_assert_eq!(a.release, b.release);
            prop_assert!((a.weight - b.weight).abs() < 1e-9);
        }
    }
}
