//! Bench for Figure 2b: order comparison (H_A vs H_ρ vs H_LP) under
//! grouping + backfilling, for both weight schemes.

use coflow_bench::bench_scale_config;
use coflow_bench::figures::run_fig2b;
use coflow_bench::report::render_fig2b;
use coflow_workloads::generate_trace;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig2b(c: &mut Criterion) {
    let trace = generate_trace(&bench_scale_config(2015));
    let mut group = c.benchmark_group("fig2b");
    group.sample_size(10);
    group.bench_function("full_figure", |b| {
        b.iter(|| run_fig2b(&trace, 4, 2015))
    });
    group.finish();

    let fig = run_fig2b(&trace, 4, 2015);
    println!("{}", render_fig2b(&fig));
    for (scheme, vals) in &fig.rows {
        assert!(
            vals[0] >= vals[1].min(vals[2]) - 1e-9,
            "{}: H_A should not beat the weight-aware orders",
            scheme
        );
    }
}

criterion_group!(benches, bench_fig2b);
criterion_main!(benches);
