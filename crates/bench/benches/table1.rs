//! Bench for Table 1: each (order, case) grid cell on the synthetic trace.
//!
//! Regenerates the Table 1 measurement (normalized total weighted
//! completion times) and reports the wall time of each cell, so both the
//! paper numbers and the scheduler's own cost are tracked. Run with
//! `cargo bench -p coflow-bench --bench table1`.

use coflow::ordering::{compute_order, OrderRule};
use coflow::sched::run_with_order;
use coflow_bench::bench_scale_config;
use coflow_workloads::{assign_weights, filter_by_width, generate_trace, WeightScheme};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_table1_cells(c: &mut Criterion) {
    let trace = generate_trace(&bench_scale_config(2015));
    let filtered = filter_by_width(&trace, 4);
    let inst = assign_weights(&filtered, WeightScheme::RandomPermutation { seed: 2015 });

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for rule in [
        OrderRule::Arrival,
        OrderRule::LoadOverWeight,
        OrderRule::LpBased,
    ] {
        let order = compute_order(&inst, rule);
        for (grouping, backfill, case) in [
            (false, false, "a"),
            (false, true, "b"),
            (true, false, "c"),
            (true, true, "d"),
        ] {
            group.bench_with_input(
                BenchmarkId::new(rule.name(), case),
                &order,
                |b, order| {
                    b.iter(|| {
                        run_with_order(&inst, order.clone(), grouping, backfill).objective
                    })
                },
            );
        }
    }
    group.finish();

    // Print the Table 1 block itself once so `cargo bench` output carries
    // the reproduced numbers alongside the timings.
    let block = coflow_bench::table1::run_block(&trace, 4, WeightScheme::RandomPermutation { seed: 2015 });
    println!("{}", coflow_bench::report::render_table1_block(&block));
}

fn bench_lp_ordering(c: &mut Criterion) {
    // The LP solve dominates H_LP's cost: benchmark it separately.
    let trace = generate_trace(&bench_scale_config(2015));
    let inst = assign_weights(&trace, WeightScheme::Equal);
    let mut group = c.benchmark_group("table1_ordering");
    group.sample_size(10);
    group.bench_function("H_LP_order", |b| {
        b.iter(|| compute_order(&inst, OrderRule::LpBased))
    });
    group.bench_function("H_rho_order", |b| {
        b.iter(|| compute_order(&inst, OrderRule::LoadOverWeight))
    });
    group.finish();
}

criterion_group!(benches, bench_table1_cells, bench_lp_ordering);
criterion_main!(benches);
