//! Bench for Figure 2a: percentage-of-base-case gains from grouping and
//! backfilling under each order. Prints the reproduced figure data and
//! times the full figure computation.

use coflow_bench::bench_scale_config;
use coflow_bench::figures::run_fig2a;
use coflow_bench::report::render_fig2a;
use coflow_workloads::generate_trace;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig2a(c: &mut Criterion) {
    let trace = generate_trace(&bench_scale_config(2015));
    let mut group = c.benchmark_group("fig2a");
    group.sample_size(10);
    group.bench_function("full_figure", |b| {
        b.iter(|| run_fig2a(&trace, 4, 2015))
    });
    group.finish();

    let fig = run_fig2a(&trace, 4, 2015);
    println!("{}", render_fig2a(&fig));
    // The paper's qualitative claims, asserted at bench time as well:
    for (rule, pct) in &fig.rows {
        assert!(
            pct[3] <= pct[0] + 1e-9,
            "{:?}: case (d) must not exceed the base case",
            rule
        );
    }
}

criterion_group!(benches, bench_fig2a);
criterion_main!(benches);
