//! Micro-benchmarks for the cross-layer hot-path kernels:
//!
//! * Hopcroft–Karp, cold start vs warm start from a surviving matching
//!   (the incremental-BvN inner loop);
//! * full BvN decomposition at the grid's port counts m ∈ {16, 60, 150};
//! * schedule execution, run-length vs unit-slot, on both the clean fabric
//!   (`Fabric::apply_run` vs `SlotSim`) and the fault executor
//!   (`FaultSim::execute_trace` vs `execute_trace_slotwise`).
//!
//! Set `CRITERION_JSON=<file>` to append one JSON line per benchmark for
//! the perf harness.

use coflow_matching::{bvn_decompose, BipartiteGraph, HopcroftKarp, IntMatrix};
use coflow_netsim::{Fabric, FaultEvent, FaultPlan, FaultSim, Run, ScheduleTrace, SlotSim, Transfer};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A decomposable demand matrix: a sum of `d` random permutation matrices
/// with random positive coefficients (equal row and column sums by
/// construction, so BvN needs no augmentation slack).
fn balanced_matrix(m: usize, d: usize, rng: &mut StdRng) -> IntMatrix {
    let mut mat = IntMatrix::zeros(m);
    for _ in 0..d {
        let mut perm: Vec<usize> = (0..m).collect();
        for i in (1..m).rev() {
            perm.swap(i, rng.gen_range(0..=i));
        }
        let coeff = rng.gen_range(1..=9u64);
        for (i, &j) in perm.iter().enumerate() {
            mat[(i, j)] += coeff;
        }
    }
    mat
}

fn bench_hopcroft_karp(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2015);
    let m = 150;
    let mat = balanced_matrix(m, 12, &mut rng);
    let g = BipartiteGraph::support_of(&mat);
    // The incremental-BvN access pattern: solve once, delete half the
    // matched edges (a permutation slot leaving the support), then re-solve
    // the survivor graph either cold or warm from the surviving pairs.
    let mut warm = HopcroftKarp::new();
    let mut g2 = g.clone();
    let matched = warm.solve(&g2);
    let pairs: Vec<(usize, usize)> = matched.pairs().collect();
    for &(u, v) in pairs.iter().take(m / 2) {
        g2.remove_edge(u, v);
        warm.unmatch(u, v);
    }
    let mut group = c.benchmark_group("hk");
    group.sample_size(40);
    group.bench_function("cold", |b| {
        b.iter(|| {
            let mut hk = HopcroftKarp::new();
            black_box(hk.solve(black_box(&g2)).size)
        })
    });
    group.bench_function("warm_after_slot_removal", |b| {
        b.iter(|| black_box(warm.clone().solve_warm(black_box(&g2)).size))
    });
    group.finish();
}

fn bench_bvn(c: &mut Criterion) {
    let mut group = c.benchmark_group("bvn_decompose");
    group.sample_size(20);
    for &m in &[16usize, 60, 150] {
        let mut rng = StdRng::seed_from_u64(42 + m as u64);
        let mat = balanced_matrix(m, 10, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(m), &mat, |b, mat| {
            b.iter(|| black_box(bvn_decompose(black_box(mat))).slots.len())
        });
    }
    group.finish();
}

/// One long-run schedule on a 60-port fabric: each of 40 coflows demands
/// units across a rotating matching, held for a long run — the shape that
/// used to cost a per-slot loop over the whole horizon.
fn long_schedule(m: usize, n: usize) -> (ScheduleTrace, Vec<IntMatrix>, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut trace = ScheduleTrace::new(m);
    let mut demands = vec![IntMatrix::zeros(m); n];
    let mut start = 1u64;
    for r in 0..24u64 {
        let duration = 40 + (r % 5) * 25;
        let shift = (r as usize * 7 + 1) % m;
        let mut transfers = Vec::new();
        for i in 0..m {
            let j = (i + shift) % m;
            let k = rng.gen_range(0..n);
            let units = rng.gen_range(duration / 2..=duration);
            demands[k][(i, j)] += units;
            transfers.push(Transfer { src: i, dst: j, coflow: k, units });
        }
        trace.push_run(Run { start, duration, transfers });
        start += duration;
    }
    (trace, demands, vec![0; n])
}

fn bench_execution(c: &mut Criterion) {
    let m = 60;
    let (trace, demands, releases) = long_schedule(m, 40);
    let plan = FaultPlan::new(vec![
        FaultEvent::IngressOutage { port: 3, start: 50, end: 180 },
        FaultEvent::EgressOutage { port: 11, start: 400, end: 520 },
        FaultEvent::LinkDegraded { src: 5, dst: 5, start: 100, end: 900, stride: 3 },
        FaultEvent::CoflowCancelled { coflow: 1, at: 300 },
    ]);
    let mut group = c.benchmark_group("execute");
    group.sample_size(10);
    group.bench_function("fault_runlength", |b| {
        b.iter(|| {
            let mut sim = FaultSim::new(m, &demands, &releases, plan.clone());
            sim.execute_trace(black_box(&trace), None).expect("valid trace");
            black_box(sim.blocked_units())
        })
    });
    group.bench_function("fault_unit_slot", |b| {
        b.iter(|| {
            let mut sim = FaultSim::new(m, &demands, &releases, plan.clone());
            sim.execute_trace_slotwise(black_box(&trace), None).expect("valid trace");
            black_box(sim.blocked_units())
        })
    });
    group.bench_function("fabric_runlength", |b| {
        b.iter(|| {
            let mut fabric = Fabric::new(m, &demands, &releases);
            for run in &trace.runs {
                let pairs: Vec<(usize, usize, Vec<usize>)> = run
                    .transfers
                    .iter()
                    .map(|t| (t.src, t.dst, vec![t.coflow]))
                    .collect();
                fabric.apply_run(&pairs, run.duration);
            }
            black_box(fabric.now())
        })
    });
    group.bench_function("fabric_unit_slot", |b| {
        b.iter(|| {
            let mut sim = SlotSim::new(m, &demands, &releases);
            trace.for_each_slot(|_, moves| sim.step(moves));
            black_box(sim.now())
        })
    });
    group.finish();

    // The two fault executors must agree before their timings mean anything.
    let mut a = FaultSim::new(m, &demands, &releases, plan.clone());
    let mut b = FaultSim::new(m, &demands, &releases, plan);
    a.execute_trace(&trace, None).expect("valid trace");
    b.execute_trace_slotwise(&trace, None).expect("valid trace");
    let (ta, ca, _) = a.finish();
    let (tb, cb, _) = b.finish();
    assert_eq!(ta, tb, "run-length and unit-slot executed traces must match");
    assert_eq!(ca, cb);
}

criterion_group!(benches, bench_hopcroft_karp, bench_bvn, bench_execution);
criterion_main!(benches);
