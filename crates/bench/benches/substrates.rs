//! Micro-benchmarks of the substrates: Birkhoff–von Neumann decomposition,
//! Hopcroft–Karp matching, and the revised simplex on the interval LP.

use coflow::relax::build_interval_model;
use coflow_lp::solve;
use coflow_matching::{bvn_decompose, maximum_matching, BipartiteGraph, IntMatrix};
use coflow_workloads::{generate_trace, random_instance, TraceConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(m: usize, density: f64, seed: u64) -> IntMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = IntMatrix::zeros(m);
    for i in 0..m {
        for j in 0..m {
            if rng.gen_bool(density) {
                d[(i, j)] = rng.gen_range(1..64);
            }
        }
    }
    d
}

fn bench_bvn(c: &mut Criterion) {
    let mut group = c.benchmark_group("bvn_decompose");
    for &m in &[16usize, 48, 96] {
        let d = random_matrix(m, 0.3, m as u64);
        group.bench_with_input(BenchmarkId::from_parameter(m), &d, |b, d| {
            b.iter(|| bvn_decompose(d))
        });
    }
    group.finish();
}

fn bench_hopcroft_karp(c: &mut Criterion) {
    let mut group = c.benchmark_group("hopcroft_karp");
    for &m in &[32usize, 128, 256] {
        let mut rng = StdRng::seed_from_u64(m as u64);
        let mut g = BipartiteGraph::new(m, m);
        for u in 0..m {
            for v in 0..m {
                if rng.gen_bool(0.1) {
                    g.add_edge(u, v);
                }
            }
        }
        group.bench_with_input(BenchmarkId::from_parameter(m), &g, |b, g| {
            b.iter(|| maximum_matching(g).size)
        });
    }
    group.finish();
}

fn bench_interval_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval_lp_solve");
    group.sample_size(10);
    // A generated trace and a uniform random instance.
    let trace = generate_trace(&TraceConfig {
        ports: 20,
        num_coflows: 24,
        seed: 7,
        max_flow_size: 64,
        ..TraceConfig::default()
    });
    let uniform = random_instance(12, 20, 0.25, 16, 7);
    for (name, inst) in [("trace20x24", &trace), ("uniform12x20", &uniform)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let (model, _, _) = build_interval_model(inst);
                let sol = solve(&model);
                assert!(sol.is_optimal());
                sol.objective
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bvn, bench_hopcroft_karp, bench_interval_lp);
criterion_main!(benches);
