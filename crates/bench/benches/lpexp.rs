//! Bench for the §4.2 lower-bound experiment: solving (LP-EXP) and
//! computing the near-optimality ratio on a reduced-scale instance.

use coflow_bench::lowerbound::run_lowerbound;
use coflow_bench::report::render_lowerbound;
use coflow_workloads::{assign_weights, generate_trace, TraceConfig, WeightScheme};
use criterion::{criterion_group, criterion_main, Criterion};

fn small_instance() -> coflow::Instance {
    let cfg = TraceConfig {
        ports: 10,
        num_coflows: 12,
        seed: 2015,
        flow_size_mu: 0.9,
        flow_size_sigma: 0.7,
        max_flow_size: 8,
        ..TraceConfig::default()
    };
    assign_weights(
        &generate_trace(&cfg),
        WeightScheme::RandomPermutation { seed: 2015 },
    )
}

fn bench_lpexp(c: &mut Criterion) {
    let inst = small_instance();
    let mut group = c.benchmark_group("lpexp");
    group.sample_size(10);
    group.bench_function("lower_bound_experiment", |b| {
        b.iter(|| run_lowerbound(&inst))
    });
    group.finish();

    let report = run_lowerbound(&inst);
    println!("{}", render_lowerbound(&report));
    assert!(report.lp_exp_bound <= report.hlp_cost + 1e-6);
    assert!(report.interval_bound <= report.lp_exp_bound + 1e-6);
}

criterion_group!(benches, bench_lpexp);
criterion_main!(benches);
