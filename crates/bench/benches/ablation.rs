//! Ablations of the design choices called out in DESIGN.md:
//!
//! 1. grouping grid base (2 = Algorithm 2, 1+√2 = randomized grid, 4 =
//!    coarser) — effect on objective;
//! 2. backfill scope: none / same-pair (paper) / work-conserving rematch
//!    (extension);
//! 3. simplex pricing: Dantzig vs Bland;
//! 4. LP presolve on/off (constructed-model row pruning is always on).
//!
//! Objective-value ablations are printed; timing ablations are measured.

use coflow::grouping::group_by_grid;
use coflow::intervals::GeometricGrid;
use coflow::ordering::{compute_order, OrderRule};
use coflow::relax::{build_interval_model, solve_interval_lp_with};
use coflow::sched::{run_with_order, run_with_order_ext};
use coflow_bench::bench_scale_config;
use coflow_lp::{solve_with, SimplexOptions};
use coflow_workloads::{assign_weights, generate_trace, WeightScheme};
use criterion::{criterion_group, criterion_main, Criterion};

fn instance() -> coflow::Instance {
    assign_weights(
        &generate_trace(&bench_scale_config(2015)),
        WeightScheme::RandomPermutation { seed: 2015 },
    )
}

fn ablate_grouping_base(c: &mut Criterion) {
    let inst = instance();
    let order = compute_order(&inst, OrderRule::LpBased);
    let v = inst.cumulative_loads(&order);
    let horizon = v.iter().copied().max().unwrap_or(1);

    println!("== ablation: grouping grid base (objective, backfill on) ==");
    for (label, base) in [
        ("1.5", 1.5),
        ("2.0 (paper)", 2.0),
        ("1+sqrt2", 1.0 + std::f64::consts::SQRT_2),
        ("4.0", 4.0),
    ] {
        let grid = GeometricGrid::scaled(horizon, 1.0, base);
        let groups = group_by_grid(&inst, &order, &grid).groups.len();
        let out = coflow::sched::run_with_order_grid(&inst, order.clone(), &grid, true);
        println!(
            "  base {:<12} -> {:>2} groups, objective {:.0}",
            label, groups, out.objective
        );
    }

    let mut group = c.benchmark_group("ablation_grouping");
    group.sample_size(10);
    group.bench_function("grouped_backfilled", |b| {
        b.iter(|| run_with_order(&inst, order.clone(), true, true).objective)
    });
    group.finish();
}

fn ablate_backfill_scope(c: &mut Criterion) {
    let inst = instance();
    let order = compute_order(&inst, OrderRule::LpBased);
    println!("== ablation: backfill scope (objective) ==");
    let none = run_with_order(&inst, order.clone(), true, false);
    let same_pair = run_with_order(&inst, order.clone(), true, true);
    let rematch = run_with_order_ext(&inst, order.clone(), true, true, true);
    println!("  none (case c):        {:.0}", none.objective);
    println!("  same-pair (paper d):  {:.0}", same_pair.objective);
    println!("  rematch (extension):  {:.0}", rematch.objective);
    assert!(same_pair.objective <= none.objective + 1e-9);
    assert!(rematch.objective <= same_pair.objective + 1e-9);

    let mut group = c.benchmark_group("ablation_backfill");
    group.sample_size(10);
    group.bench_function("same_pair", |b| {
        b.iter(|| run_with_order(&inst, order.clone(), true, true).objective)
    });
    group.bench_function("rematch", |b| {
        b.iter(|| run_with_order_ext(&inst, order.clone(), true, true, true).objective)
    });
    group.finish();
}

fn ablate_simplex_options(c: &mut Criterion) {
    let inst = instance();
    let mut group = c.benchmark_group("ablation_simplex");
    group.sample_size(10);
    group.bench_function("dantzig_presolve", |b| {
        b.iter(|| solve_interval_lp_with(&inst, &SimplexOptions::default()).lower_bound)
    });
    group.bench_function("bland", |b| {
        b.iter(|| {
            solve_interval_lp_with(
                &inst,
                &SimplexOptions {
                    always_bland: true,
                    ..Default::default()
                },
            )
            .lower_bound
        })
    });
    group.bench_function("no_presolve", |b| {
        b.iter(|| {
            let (model, _, _) = build_interval_model(&inst);
            solve_with(
                &model,
                &SimplexOptions {
                    presolve: false,
                    ..Default::default()
                },
            )
            .objective
        })
    });
    group.finish();

    // Sanity: all configurations agree on the optimum.
    let a = solve_interval_lp_with(&inst, &SimplexOptions::default()).lower_bound;
    let b = solve_interval_lp_with(
        &inst,
        &SimplexOptions {
            always_bland: true,
            ..Default::default()
        },
    )
    .lower_bound;
    assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
}

fn ablate_bvn_variant(c: &mut Criterion) {
    use coflow_matching::{bvn_decompose, bvn_decompose_maxmin, IntMatrix};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(7);
    let m = 48;
    let mut d = IntMatrix::zeros(m);
    for i in 0..m {
        for j in 0..m {
            if rng.gen_bool(0.4) {
                d[(i, j)] = rng.gen_range(1..64);
            }
        }
    }
    let plain = bvn_decompose(&d);
    let maxmin = bvn_decompose_maxmin(&d);
    println!("== ablation: BvN matching-selection rule (48x48, 40% dense) ==");
    println!(
        "  arbitrary perfect matching: {} matchings for {} slots",
        plain.slots.len(),
        plain.total_slots()
    );
    println!(
        "  max-min bottleneck:         {} matchings for {} slots",
        maxmin.slots.len(),
        maxmin.total_slots()
    );
    assert_eq!(plain.total_slots(), maxmin.total_slots());

    let mut group = c.benchmark_group("ablation_bvn");
    group.sample_size(10);
    group.bench_function("arbitrary", |b| b.iter(|| bvn_decompose(&d).slots.len()));
    group.bench_function("maxmin", |b| {
        b.iter(|| bvn_decompose_maxmin(&d).slots.len())
    });
    group.finish();
}

criterion_group!(
    benches,
    ablate_grouping_base,
    ablate_backfill_scope,
    ablate_simplex_options,
    ablate_bvn_variant
);
criterion_main!(benches);
