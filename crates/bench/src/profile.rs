//! Per-stage performance profile of the 12-cell experiment grid.
//!
//! Runs every cell of the §4.1 grid (orders {H_A, H_ρ, H_LP} × cases
//! {a, b, c, d}) with the `obs` registry enabled and reports, per cell,
//! the wall-clock spent in each pipeline stage plus the solver/matching
//! counters. The report serializes to `BENCH_grid.json` (schema
//! `coflow-bench-grid/2`, documented in DESIGN.md) and a committed
//! baseline can be diffed against a fresh run to catch per-stage
//! regressions (`scripts/bench-baseline.sh`).
//!
//! Cells run sequentially — the registry is global, and a per-cell
//! `reset()`/`snapshot()` window is what makes the attribution exact.

use coflow::ordering::{try_compute_order_with, OrderRule};
use coflow::sched::{run_with_order_opts, ExecOptions};
use coflow::Instance;
use coflow_lp::SimplexOptions;
use coflow_workloads::json::{self, fmt_f64, JsonValue};
use std::fmt::Write as _;
use std::time::Instant;

use crate::grid::{case_label, CASES};

/// Schema tag written into every report; bump on breaking layout changes.
///
/// `/2` reports **exclusive** self-times: each stage counts only the time
/// inside its own spans, with nested reported stages subtracted (in `/1`,
/// `order` swallowed `lp_build` + `lp_solve` for the `H_LP` cells). The
/// `other` bucket absorbs un-instrumented work, so in single-threaded runs
/// the stages sum to `total`; under the parallel decomposition path,
/// `decompose` is CPU time summed across workers and the stage sum may
/// exceed the wall-clock `total`.
///
/// `/3` adds a per-cell `mem` object from the counting allocator: peak
/// live bytes and kernel peak RSS for the cell window, allocation
/// calls/bytes for the whole cell, and exclusive per-stage allocation
/// attribution (same nearest-reported-ancestor rule as the timings).
pub const SCHEMA: &str = "coflow-bench-grid/3";

/// Schema tag of the standalone memory report consumed by
/// `scripts/check-mem.sh` (see [`render_mem_json`] / [`compare_mem`]).
pub const MEM_SCHEMA: &str = "coflow-bench-mem/1";

/// The pipeline stages extracted from span leaf names, in report order.
/// `decompose` sums the greedy and max-min BvN variants.
pub const STAGES: [&str; 7] = [
    "lp_build",
    "lp_solve",
    "order",
    "decompose",
    "simulate",
    "other",
    "total",
];

/// Span leaves that map to reported stages; used to compute exclusive
/// self-times (a leaf nested under another reported leaf is attributed to
/// itself and subtracted from the nearest reported ancestor).
const REPORTED_LEAVES: [&str; 6] = [
    "lp.build_model",
    "lp.solve",
    "sched.order",
    "matching.bvn_decompose",
    "matching.bvn_decompose_maxmin",
    "sched.simulate",
];

/// Per-stage wall-clock of one cell, milliseconds (exclusive self-times).
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// Interval-LP model construction (`lp.build_model`).
    pub lp_build_ms: f64,
    /// Simplex solves (`lp.solve`); near zero when the basis cache answers
    /// from an exact hit.
    pub lp_solve_ms: f64,
    /// Ordering stage self-time (`sched.order` minus the nested LP build
    /// and solve).
    pub order_ms: f64,
    /// BvN decompositions (`matching.bvn_decompose[_maxmin]`); CPU time
    /// summed across workers under the parallel path.
    pub decompose_ms: f64,
    /// Switch simulation (`sched.simulate`).
    pub simulate_ms: f64,
    /// Un-instrumented remainder: `total` minus the other stages, clamped
    /// at zero (parallel decompose can push the stage sum past `total`).
    pub other_ms: f64,
    /// Whole cell, measured directly around order + schedule.
    pub total_ms: f64,
}

impl StageTimings {
    /// Stage value by report name ([`STAGES`]).
    pub fn get(&self, stage: &str) -> f64 {
        match stage {
            "lp_build" => self.lp_build_ms,
            "lp_solve" => self.lp_solve_ms,
            "order" => self.order_ms,
            "decompose" => self.decompose_ms,
            "simulate" => self.simulate_ms,
            "other" => self.other_ms,
            "total" => self.total_ms,
            other => panic!("unknown stage '{}'", other),
        }
    }
}

/// The stages carrying per-stage allocation attribution (the measured
/// pipeline stages; `other`/`total` remain timing-only).
pub const MEM_STAGES: [&str; 5] = ["lp_build", "lp_solve", "order", "decompose", "simulate"];

/// Allocator view of one cell: whole-cell deltas plus exclusive per-stage
/// attribution, indexed like [`MEM_STAGES`].
#[derive(Clone, Debug, Default)]
pub struct CellMem {
    /// High-water mark of live bytes inside the cell window.
    pub peak_live_bytes: u64,
    /// Kernel peak RSS (`VmHWM`, kB) at cell end; 0 when unavailable.
    /// Monotone per process — compare across runs, not across cells.
    pub peak_rss_kb: u64,
    /// Allocation calls during the cell.
    pub alloc_calls: u64,
    /// Bytes allocated during the cell.
    pub alloc_bytes: u64,
    /// Exclusive allocation calls per stage ([`MEM_STAGES`] order).
    pub stage_allocs: [u64; 5],
    /// Exclusive allocated bytes per stage ([`MEM_STAGES`] order).
    pub stage_alloc_bytes: [u64; 5],
}

impl CellMem {
    /// Stage allocation calls by report name.
    pub fn allocs(&self, stage: &str) -> u64 {
        let i = MEM_STAGES.iter().position(|s| *s == stage);
        i.map(|i| self.stage_allocs[i]).unwrap_or(0)
    }

    /// Stage allocated bytes by report name.
    pub fn bytes(&self, stage: &str) -> u64 {
        let i = MEM_STAGES.iter().position(|s| *s == stage);
        i.map(|i| self.stage_alloc_bytes[i]).unwrap_or(0)
    }
}

/// One profiled grid cell.
#[derive(Clone, Debug)]
pub struct ProfiledCell {
    /// Ordering rule (paper name, e.g. `H_LP`).
    pub order: OrderRule,
    /// Grouping flag.
    pub grouping: bool,
    /// Backfilling flag.
    pub backfill: bool,
    /// Total weighted completion time of the produced schedule.
    pub objective: f64,
    /// Schedule makespan.
    pub makespan: u64,
    /// Per-stage wall-clock.
    pub stages: StageTimings,
    /// Allocator accounting for the cell.
    pub mem: CellMem,
    /// Every counter the cell recorded, sorted by name.
    pub counters: Vec<(String, u64)>,
}

/// A full profile run: instance parameters plus one entry per grid cell.
#[derive(Clone, Debug)]
pub struct ProfileReport {
    /// Trace seed.
    pub seed: u64,
    /// Fabric size (ports).
    pub ports: usize,
    /// Number of coflows in the trace.
    pub coflows: usize,
    /// The 12 profiled cells, in rule-major order.
    pub cells: Vec<ProfiledCell>,
}

/// Profiles the full 12-cell grid on `instance`.
///
/// Each cell gets a fresh registry window (`obs::reset` + enable), runs
/// ordering and scheduling sequentially, and snapshots its stage spans and
/// counters. Recording is left disabled afterwards. `sequential` forces
/// [`ExecOptions::sequential_decompose`], pinning the per-batch BvN
/// decompositions to one thread — the threads = 1 leg of the speedup
/// table in EXPERIMENTS.md (outputs are identical either way).
pub fn run_profile(
    instance: &Instance,
    seed: u64,
    lp_opts: &SimplexOptions,
    sequential: bool,
) -> ProfileReport {
    let mut cells = Vec::with_capacity(OrderRule::PAPER_RULES.len() * CASES.len());
    for &rule in &OrderRule::PAPER_RULES {
        for &(grouping, backfill) in &CASES {
            obs::reset();
            obs::alloc::reset_peak();
            let mem_before = obs::alloc::stats();
            obs::set_enabled(true);
            let cell_start = Instant::now();
            let order = match try_compute_order_with(instance, rule, lp_opts) {
                Ok(order) => order,
                Err(e) => panic!("profile: {:?} order failed: {}", rule, e),
            };
            let outcome = run_with_order_opts(
                instance,
                order,
                grouping,
                ExecOptions { backfill, sequential_decompose: sequential, ..ExecOptions::default() },
            );
            let total_ms = cell_start.elapsed().as_secs_f64() * 1e3;
            let snap = obs::snapshot();
            obs::set_enabled(false);
            let mem = {
                let mem_after = &snap.alloc;
                let stage_mem = |leaf: &str| snap.span_mem_self(leaf, &REPORTED_LEAVES);
                let (lp_build_a, lp_build_b) = stage_mem("lp.build_model");
                let (lp_solve_a, lp_solve_b) = stage_mem("lp.solve");
                let (order_a, order_b) = stage_mem("sched.order");
                let (dec_a, dec_b) = stage_mem("matching.bvn_decompose");
                let (decm_a, decm_b) = stage_mem("matching.bvn_decompose_maxmin");
                let (sim_a, sim_b) = stage_mem("sched.simulate");
                let clamp = |x: i64| x.max(0) as u64;
                CellMem {
                    peak_live_bytes: mem_after.peak_live_bytes,
                    peak_rss_kb: snap.peak_rss_kb.unwrap_or(0),
                    alloc_calls: mem_after.alloc_calls.saturating_sub(mem_before.alloc_calls),
                    alloc_bytes: mem_after.alloc_bytes.saturating_sub(mem_before.alloc_bytes),
                    stage_allocs: [
                        clamp(lp_build_a),
                        clamp(lp_solve_a),
                        clamp(order_a),
                        clamp(dec_a + decm_a),
                        clamp(sim_a),
                    ],
                    stage_alloc_bytes: [
                        clamp(lp_build_b),
                        clamp(lp_solve_b),
                        clamp(order_b),
                        clamp(dec_b + decm_b),
                        clamp(sim_b),
                    ],
                }
            };
            if obs::telemetry::active() {
                let label = format!("{}/{}", rule.name(), case_label(grouping, backfill));
                obs::telemetry::emit(&obs::telemetry::Sample {
                    source: "profile",
                    label: &label,
                    epoch: cells.len() as u64,
                    completed_coflows: instance.len() as u64,
                    ..Default::default()
                });
            }
            cells.push(ProfiledCell {
                order: rule,
                grouping,
                backfill,
                objective: outcome.objective,
                makespan: outcome.makespan(),
                stages: {
                    let self_ms =
                        |leaf: &str| snap.span_self_ms(leaf, &REPORTED_LEAVES);
                    let lp_build_ms = self_ms("lp.build_model");
                    let lp_solve_ms = self_ms("lp.solve");
                    let order_ms = self_ms("sched.order");
                    let decompose_ms = self_ms("matching.bvn_decompose")
                        + self_ms("matching.bvn_decompose_maxmin");
                    let simulate_ms = self_ms("sched.simulate");
                    let accounted =
                        lp_build_ms + lp_solve_ms + order_ms + decompose_ms + simulate_ms;
                    StageTimings {
                        lp_build_ms,
                        lp_solve_ms,
                        order_ms,
                        decompose_ms,
                        simulate_ms,
                        other_ms: (total_ms - accounted).max(0.0),
                        total_ms,
                    }
                },
                mem,
                counters: {
                    let mut counters = snap.counters;
                    // Zero-delta counters are never registered (e.g. a
                    // presolve pass that eliminates nothing), but the
                    // report schema promises these keys in every cell.
                    for required in REQUIRED_COUNTERS {
                        counters.entry(required.to_string()).or_insert(0);
                    }
                    counters.into_iter().collect()
                },
            });
        }
    }
    ProfileReport {
        seed,
        ports: instance.ports(),
        coflows: instance.len(),
        cells,
    }
}

/// Renders the `mem` object of one cell (shared by the grid and mem
/// reports; `indent` is the continuation-line indentation).
fn render_cell_mem(mem: &CellMem) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"peak_live_bytes\": {}, \"peak_rss_kb\": {}, \"alloc_calls\": {}, \
         \"alloc_bytes\": {}, ",
        mem.peak_live_bytes, mem.peak_rss_kb, mem.alloc_calls, mem.alloc_bytes,
    );
    out.push_str("\"stage_allocs\": {");
    for (i, stage) in MEM_STAGES.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {}", json::quote(stage), mem.stage_allocs[i]);
    }
    out.push_str("}, \"stage_alloc_bytes\": {");
    for (i, stage) in MEM_STAGES.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {}", json::quote(stage), mem.stage_alloc_bytes[i]);
    }
    out.push_str("}}");
    out
}

/// Serializes `report` as `coflow-bench-grid/3` JSON.
pub fn render_json(report: &ProfileReport) -> String {
    let mut cells = String::from("[\n");
    for (idx, cell) in report.cells.iter().enumerate() {
        cells.push_str("    {\n");
        let _ = writeln!(cells, "      \"order\": {},", json::quote(cell.order.name()));
        let _ = writeln!(
            cells,
            "      \"case\": {},",
            json::quote(case_label(cell.grouping, cell.backfill))
        );
        let _ = writeln!(cells, "      \"grouping\": {},", cell.grouping);
        let _ = writeln!(cells, "      \"backfill\": {},", cell.backfill);
        let _ = writeln!(cells, "      \"objective\": {},", fmt_f64(cell.objective));
        let _ = writeln!(cells, "      \"makespan\": {},", cell.makespan);
        cells.push_str("      \"stages_ms\": {");
        for (i, stage) in STAGES.iter().enumerate() {
            if i > 0 {
                cells.push_str(", ");
            }
            let _ = write!(
                cells,
                "{}: {}",
                json::quote(stage),
                fmt_f64(cell.stages.get(stage))
            );
        }
        cells.push_str("},\n");
        let _ = writeln!(cells, "      \"mem\": {},", render_cell_mem(&cell.mem));
        cells.push_str("      \"counters\": {");
        for (i, (name, value)) in cell.counters.iter().enumerate() {
            if i > 0 {
                cells.push_str(", ");
            }
            let _ = write!(cells, "{}: {}", json::quote(name), value);
        }
        cells.push_str("}\n");
        cells.push_str(if idx + 1 < report.cells.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    cells.push_str("  ]");
    let mut doc = crate::sink::JsonDoc::new(SCHEMA);
    doc.num("seed", report.seed)
        .num("ports", report.ports)
        .num("coflows", report.coflows)
        .raw("cells", cells);
    doc.render()
}

/// Serializes the memory view of `report` as `coflow-bench-mem/1` JSON —
/// the committed `BENCH_mem.json` baseline format.
pub fn render_mem_json(report: &ProfileReport) -> String {
    let mut cells = String::from("[\n");
    for (idx, cell) in report.cells.iter().enumerate() {
        let _ = write!(
            cells,
            "    {{\"order\": {}, \"case\": {}, \"mem\": {}}}",
            json::quote(cell.order.name()),
            json::quote(case_label(cell.grouping, cell.backfill)),
            render_cell_mem(&cell.mem),
        );
        cells.push_str(if idx + 1 < report.cells.len() { ",\n" } else { "\n" });
    }
    cells.push_str("  ]");
    let mut doc = crate::sink::JsonDoc::new(MEM_SCHEMA);
    doc.num("seed", report.seed)
        .num("ports", report.ports)
        .num("coflows", report.coflows)
        .raw("cells", cells);
    doc.render()
}

fn num_f64(v: &JsonValue) -> Option<f64> {
    match v {
        JsonValue::Num(s) => s.parse().ok(),
        _ => None,
    }
}

/// Per-stage totals (sum over cells) of a parsed report, keyed by stage.
fn stage_sums(doc: &JsonValue) -> Result<Vec<(String, f64)>, String> {
    let Some(JsonValue::Arr(cells)) = doc.get("cells") else {
        return Err("report has no 'cells' array".to_string());
    };
    if cells.is_empty() {
        return Err("report has no cells".to_string());
    }
    let mut sums: Vec<(String, f64)> =
        STAGES.iter().map(|s| (s.to_string(), 0.0)).collect();
    for cell in cells {
        let Some(stages) = cell.get("stages_ms") else {
            return Err("cell has no 'stages_ms' object".to_string());
        };
        for (name, sum) in sums.iter_mut() {
            let value = stages
                .get(name)
                .and_then(num_f64)
                .ok_or_else(|| format!("stage '{}' missing or non-numeric", name))?;
            *sum += value;
        }
    }
    Ok(sums)
}

/// One per-stage comparison row from [`compare_reports`].
#[derive(Clone, Debug)]
pub struct StageDelta {
    /// Stage name.
    pub stage: String,
    /// Baseline total across cells, ms.
    pub baseline_ms: f64,
    /// Current total across cells, ms.
    pub current_ms: f64,
    /// True when this stage breaches the tolerance.
    pub regressed: bool,
}

/// Wall-clock noise floor: stages faster than this in both runs are never
/// flagged, whatever the ratio — a 0.2 ms → 0.5 ms blip is not a
/// regression signal on shared hardware.
pub const ABS_FLOOR_MS: f64 = 10.0;

/// Counter keys the report guarantees in every cell, zero-filled when the
/// cell never touched them (H_A/H_ρ cells solve no LP; a presolve pass may
/// eliminate nothing).
pub const REQUIRED_COUNTERS: [&str; 5] = [
    "lp.simplex.pivots",
    "lp.presolve.rows_removed",
    "lp.basis_cache.exact_hits",
    "matching.bvn.permutations",
    "netsim.fabric.slots",
];

/// Compares two serialized reports stage by stage (totals across cells).
/// A stage regresses when the current total exceeds the baseline by more
/// than `tolerance` (fractional, e.g. 0.2 = +20%) *and* the absolute
/// difference clears [`ABS_FLOOR_MS`].
pub fn compare_reports(
    baseline: &str,
    current: &str,
    tolerance: f64,
) -> Result<Vec<StageDelta>, String> {
    let base_doc = json::parse(baseline).map_err(|e| format!("baseline: {}", e))?;
    let cur_doc = json::parse(current).map_err(|e| format!("current: {}", e))?;
    for (label, doc) in [("baseline", &base_doc), ("current", &cur_doc)] {
        match doc.get("schema") {
            Some(JsonValue::Str(s)) if s == SCHEMA => {}
            other => {
                return Err(format!(
                    "{}: unsupported schema {:?} (expected {})",
                    label, other, SCHEMA
                ))
            }
        }
    }
    let base = stage_sums(&base_doc).map_err(|e| format!("baseline: {}", e))?;
    let cur = stage_sums(&cur_doc).map_err(|e| format!("current: {}", e))?;
    Ok(base
        .into_iter()
        .zip(cur)
        .map(|((stage, baseline_ms), (_, current_ms))| {
            let regressed = current_ms > baseline_ms * (1.0 + tolerance)
                && current_ms - baseline_ms > ABS_FLOOR_MS;
            StageDelta {
                stage,
                baseline_ms,
                current_ms,
                regressed,
            }
        })
        .collect())
}

/// One metric row from [`compare_mem`].
#[derive(Clone, Debug)]
pub struct MemDelta {
    /// Metric name (e.g. `allocs:lp_solve`, `peak_live_bytes(max)`).
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// True when this metric breaches the tolerance.
    pub regressed: bool,
}

/// Allocation-count noise floor: metrics moving by fewer calls than this
/// are never flagged (a handful of extra boxes is not a leak signal).
pub const MEM_ALLOC_FLOOR: f64 = 10_000.0;

/// Byte noise floor (1 MiB): byte metrics moving by less are never
/// flagged.
pub const MEM_BYTES_FLOOR: f64 = 1024.0 * 1024.0;

/// Extracts the gated memory metrics from a parsed mem report: per-stage
/// allocation calls and bytes summed across cells, whole-run allocation
/// totals, and the max per-cell peak live bytes. Peak RSS is reported but
/// never gated — it is monotone per process and machine-dependent.
fn mem_metrics(doc: &JsonValue) -> Result<Vec<(String, f64)>, String> {
    let Some(JsonValue::Arr(cells)) = doc.get("cells") else {
        return Err("report has no 'cells' array".to_string());
    };
    if cells.is_empty() {
        return Err("report has no cells".to_string());
    }
    let mut metrics: Vec<(String, f64)> = Vec::new();
    for stage in MEM_STAGES {
        metrics.push((format!("allocs:{}", stage), 0.0));
        metrics.push((format!("alloc_bytes:{}", stage), 0.0));
    }
    metrics.push(("alloc_calls(total)".to_string(), 0.0));
    metrics.push(("alloc_bytes(total)".to_string(), 0.0));
    metrics.push(("peak_live_bytes(max)".to_string(), 0.0));
    for cell in cells {
        let Some(mem) = cell.get("mem") else {
            return Err("cell has no 'mem' object".to_string());
        };
        let num = |obj: &JsonValue, key: &str| -> Result<f64, String> {
            obj.get(key)
                .and_then(num_f64)
                .ok_or_else(|| format!("mem field '{}' missing or non-numeric", key))
        };
        let allocs = mem.get("stage_allocs").ok_or("mem missing 'stage_allocs'")?;
        let bytes = mem
            .get("stage_alloc_bytes")
            .ok_or("mem missing 'stage_alloc_bytes'")?;
        for (i, stage) in MEM_STAGES.iter().enumerate() {
            metrics[2 * i].1 += num(allocs, stage)?;
            metrics[2 * i + 1].1 += num(bytes, stage)?;
        }
        let base = MEM_STAGES.len() * 2;
        metrics[base].1 += num(mem, "alloc_calls")?;
        metrics[base + 1].1 += num(mem, "alloc_bytes")?;
        let peak = num(mem, "peak_live_bytes")?;
        if peak > metrics[base + 2].1 {
            metrics[base + 2].1 = peak;
        }
    }
    Ok(metrics)
}

/// Compares two serialized `coflow-bench-mem/1` reports metric by metric.
/// A metric regresses when the current value exceeds the baseline by more
/// than `tolerance` (fractional) *and* the absolute growth clears the
/// metric's noise floor ([`MEM_ALLOC_FLOOR`] for call counts,
/// [`MEM_BYTES_FLOOR`] for byte metrics).
pub fn compare_mem(
    baseline: &str,
    current: &str,
    tolerance: f64,
) -> Result<Vec<MemDelta>, String> {
    let base_doc = json::parse(baseline).map_err(|e| format!("baseline: {}", e))?;
    let cur_doc = json::parse(current).map_err(|e| format!("current: {}", e))?;
    for (label, doc) in [("baseline", &base_doc), ("current", &cur_doc)] {
        match doc.get("schema") {
            Some(JsonValue::Str(s)) if s == MEM_SCHEMA => {}
            other => {
                return Err(format!(
                    "{}: unsupported schema {:?} (expected {})",
                    label, other, MEM_SCHEMA
                ))
            }
        }
    }
    let base = mem_metrics(&base_doc).map_err(|e| format!("baseline: {}", e))?;
    let cur = mem_metrics(&cur_doc).map_err(|e| format!("current: {}", e))?;
    Ok(base
        .into_iter()
        .zip(cur)
        .map(|((metric, baseline), (_, current))| {
            let floor = if metric.contains("bytes") { MEM_BYTES_FLOOR } else { MEM_ALLOC_FLOOR };
            let regressed = current > baseline * (1.0 + tolerance)
                && current - baseline > floor;
            MemDelta { metric, baseline, current, regressed }
        })
        .collect())
}

/// Plain-text table of a profile run (stderr-friendly progress report).
pub fn render_profile(report: &ProfileReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== profile: {} ports, {} coflows, seed {} ==",
        report.ports, report.coflows, report.seed
    );
    let _ = writeln!(
        out,
        "{:<6} {:<4} {:>12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "order", "case", "objective", "lp_build", "lp_solve", "order", "decomp", "simulate",
        "other", "total", "peakMiB", "allocs"
    );
    for c in &report.cells {
        let _ = writeln!(
            out,
            "{:<6} {:<4} {:>12.0} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} \
             {:>9.1} {:>9}",
            c.order.name(),
            case_label(c.grouping, c.backfill),
            c.objective,
            c.stages.lp_build_ms,
            c.stages.lp_solve_ms,
            c.stages.order_ms,
            c.stages.decompose_ms,
            c.stages.simulate_ms,
            c.stages.other_ms,
            c.stages.total_ms,
            c.mem.peak_live_bytes as f64 / (1024.0 * 1024.0),
            c.mem.alloc_calls,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use coflow_workloads::{generate_trace, TraceConfig};

    fn tiny_report() -> ProfileReport {
        let inst = generate_trace(&TraceConfig::small(7));
        run_profile(&inst, 7, &SimplexOptions::default(), false)
    }

    #[test]
    fn profile_covers_all_twelve_cells_with_required_counters() {
        let report = tiny_report();
        assert_eq!(report.cells.len(), 12);
        for cell in &report.cells {
            assert!(cell.stages.total_ms > 0.0);
            let counter = |name: &str| {
                cell.counters
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|&(_, v)| v)
            };
            // The schema-promised keys are present in every cell, even
            // where the underlying counter never fired.
            for required in REQUIRED_COUNTERS {
                assert!(
                    counter(required).is_some(),
                    "cell missing required counter {}",
                    required
                );
            }
            // Every cell decomposes and simulates.
            assert!(counter("matching.bvn.permutations").unwrap_or(0) > 0);
            assert!(counter("netsim.fabric.slots").unwrap_or(0) > 0);
            if cell.order == OrderRule::LpBased {
                // An H_LP cell either solved the interval LP (pivots) or
                // got the stored solution from the process-global basis
                // cache (exact hit) — identical output either way.
                assert!(
                    counter("lp.simplex.pivots").unwrap_or(0) > 0
                        || counter("lp.basis_cache.exact_hits").unwrap_or(0) > 0,
                    "H_LP cells must record pivots or a basis-cache hit"
                );
            }
        }
    }

    #[test]
    fn exclusive_stages_sum_to_total_within_parallel_slack() {
        // Schema /2 invariant: the ordering stage no longer swallows the LP
        // stages, and the `other` bucket absorbs un-instrumented work, so
        // the non-total stages account for at most `total` plus the CPU
        // time the parallel decompose path sums across workers.
        let report = tiny_report();
        for cell in &report.cells {
            let s = &cell.stages;
            let sum = s.lp_build_ms + s.lp_solve_ms + s.order_ms + s.decompose_ms
                + s.simulate_ms
                + s.other_ms;
            let threads = std::thread::available_parallelism()
                .map(|n| n.get() as f64)
                .unwrap_or(1.0);
            assert!(
                sum <= s.total_ms.max(0.05) * (1.0 + threads) + 1.0,
                "stage sum {sum} implausible vs total {} ({:?} case {})",
                s.total_ms,
                cell.order,
                crate::grid::case_label(cell.grouping, cell.backfill),
            );
            // The /1 bug: order included lp_build + lp_solve. Exclusive
            // accounting keeps them disjoint, so their sum fits in total
            // (all three are main-thread wall clock).
            assert!(
                s.order_ms + s.lp_build_ms + s.lp_solve_ms <= s.total_ms + 1.0,
                "order must not double-count the LP stages"
            );
        }
    }

    #[test]
    fn report_json_round_trips_and_self_compares_clean() {
        let report = tiny_report();
        let rendered = render_json(&report);
        let doc = json::parse(&rendered).expect("profile JSON must parse");
        assert_eq!(
            doc.get("schema"),
            Some(&JsonValue::Str(SCHEMA.to_string()))
        );
        let Some(JsonValue::Arr(cells)) = doc.get("cells") else {
            panic!("cells array missing");
        };
        assert_eq!(cells.len(), 12);
        // A report never regresses against itself.
        let deltas = compare_reports(&rendered, &rendered, 0.2).expect("compare");
        assert_eq!(deltas.len(), STAGES.len());
        assert!(deltas.iter().all(|d| !d.regressed));
    }

    #[test]
    fn comparison_flags_large_slow_stages_only() {
        let report = tiny_report();
        let baseline = render_json(&report);
        let mut slowed = report.clone();
        for cell in &mut slowed.cells {
            cell.stages.simulate_ms = cell.stages.simulate_ms * 10.0 + 50.0;
            cell.stages.total_ms += 50.0;
        }
        let current = render_json(&slowed);
        let deltas = compare_reports(&baseline, &current, 0.2).expect("compare");
        let sim = deltas.iter().find(|d| d.stage == "simulate").unwrap();
        assert!(sim.regressed, "10x + 50ms/cell must breach 20%+floor");
        // Sub-floor stages stay green even at huge ratios.
        let lp = deltas.iter().find(|d| d.stage == "lp_build").unwrap();
        assert!(!lp.regressed);
    }

    #[test]
    fn comparison_rejects_foreign_schemas() {
        let report = render_json(&tiny_report());
        let err = compare_reports("{\"schema\": \"other/9\", \"cells\": []}", &report, 0.2);
        assert!(err.is_err());
    }

    #[test]
    fn cells_carry_allocator_accounting() {
        let report = tiny_report();
        for cell in &report.cells {
            // Every cell schedules something, so it must allocate.
            assert!(cell.mem.alloc_calls > 0, "cell recorded no allocations");
            assert!(cell.mem.alloc_bytes > 0);
            assert!(cell.mem.peak_live_bytes > 0);
            // Stage attribution never exceeds the whole cell.
            let stage_total: u64 = cell.mem.stage_allocs.iter().sum();
            assert!(
                stage_total <= cell.mem.alloc_calls,
                "stage allocs {} exceed cell total {}",
                stage_total,
                cell.mem.alloc_calls
            );
            // Simulation allocates in every cell (trace growth).
            assert!(cell.mem.allocs("simulate") > 0);
        }
        if cfg!(target_os = "linux") {
            assert!(report.cells.iter().all(|c| c.mem.peak_rss_kb > 0));
        }
    }

    #[test]
    fn mem_report_round_trips_and_self_compares_clean() {
        let report = tiny_report();
        let rendered = render_mem_json(&report);
        let doc = json::parse(&rendered).expect("mem JSON must parse");
        assert_eq!(doc.get("schema"), Some(&JsonValue::Str(MEM_SCHEMA.to_string())));
        let deltas = compare_mem(&rendered, &rendered, 0.25).expect("compare");
        assert_eq!(deltas.len(), MEM_STAGES.len() * 2 + 3);
        assert!(deltas.iter().all(|d| !d.regressed));
        // The grid report embeds the same mem object per cell.
        let grid = json::parse(&render_json(&report)).expect("grid JSON");
        let Some(JsonValue::Arr(cells)) = grid.get("cells") else { panic!("cells") };
        assert!(cells.iter().all(|c| c.get("mem").is_some()));
    }

    #[test]
    fn mem_comparison_flags_growth_above_floor_and_tolerance() {
        let report = tiny_report();
        let baseline = render_mem_json(&report);
        let mut grown = report.clone();
        for cell in &mut grown.cells {
            cell.mem.alloc_calls = cell.mem.alloc_calls * 3 + 100_000;
            cell.mem.stage_allocs[4] = cell.mem.stage_allocs[4] * 3 + 100_000;
        }
        let current = render_mem_json(&grown);
        let deltas = compare_mem(&baseline, &current, 0.25).expect("compare");
        let total = deltas.iter().find(|d| d.metric == "alloc_calls(total)").unwrap();
        assert!(total.regressed, "3x + 100k calls/cell must breach 25% + floor");
        let sim = deltas.iter().find(|d| d.metric == "allocs:simulate").unwrap();
        assert!(sim.regressed);
        // Byte metrics did not move; they stay green.
        let bytes = deltas.iter().find(|d| d.metric == "alloc_bytes(total)").unwrap();
        assert!(!bytes.regressed);
        // Foreign schemas are rejected.
        assert!(compare_mem("{\"schema\": \"other/9\", \"cells\": []}", &current, 0.25).is_err());
    }
}
