//! Per-stage performance profile of the 12-cell experiment grid.
//!
//! Runs every cell of the §4.1 grid (orders {H_A, H_ρ, H_LP} × cases
//! {a, b, c, d}) with the `obs` registry enabled and reports, per cell,
//! the wall-clock spent in each pipeline stage plus the solver/matching
//! counters. The report serializes to `BENCH_grid.json` (schema
//! `coflow-bench-grid/1`, documented in DESIGN.md) and a committed
//! baseline can be diffed against a fresh run to catch per-stage
//! regressions (`scripts/bench-baseline.sh`).
//!
//! Cells run sequentially — the registry is global, and a per-cell
//! `reset()`/`snapshot()` window is what makes the attribution exact.

use coflow::ordering::{try_compute_order_with, OrderRule};
use coflow::sched::run_with_order;
use coflow::Instance;
use coflow_lp::SimplexOptions;
use coflow_workloads::json::{self, fmt_f64, JsonValue};
use std::fmt::Write as _;
use std::time::Instant;

use crate::grid::{case_label, CASES};

/// Schema tag written into every report; bump on breaking layout changes.
pub const SCHEMA: &str = "coflow-bench-grid/1";

/// The pipeline stages extracted from span leaf names, in report order.
/// `decompose` sums the greedy and max-min BvN variants.
pub const STAGES: [&str; 6] = [
    "lp_build",
    "lp_solve",
    "order",
    "decompose",
    "simulate",
    "total",
];

/// Per-stage wall-clock of one cell, milliseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// Interval-LP model construction (`lp.build_model`).
    pub lp_build_ms: f64,
    /// Simplex solves (`lp.solve`).
    pub lp_solve_ms: f64,
    /// Ordering stage end to end (`sched.order`, includes the LP for H_LP).
    pub order_ms: f64,
    /// BvN decompositions (`matching.bvn_decompose[_maxmin]`).
    pub decompose_ms: f64,
    /// Switch simulation (`sched.simulate`).
    pub simulate_ms: f64,
    /// Whole cell, measured directly around order + schedule.
    pub total_ms: f64,
}

impl StageTimings {
    /// Stage value by report name ([`STAGES`]).
    pub fn get(&self, stage: &str) -> f64 {
        match stage {
            "lp_build" => self.lp_build_ms,
            "lp_solve" => self.lp_solve_ms,
            "order" => self.order_ms,
            "decompose" => self.decompose_ms,
            "simulate" => self.simulate_ms,
            "total" => self.total_ms,
            other => panic!("unknown stage '{}'", other),
        }
    }
}

/// One profiled grid cell.
#[derive(Clone, Debug)]
pub struct ProfiledCell {
    /// Ordering rule (paper name, e.g. `H_LP`).
    pub order: OrderRule,
    /// Grouping flag.
    pub grouping: bool,
    /// Backfilling flag.
    pub backfill: bool,
    /// Total weighted completion time of the produced schedule.
    pub objective: f64,
    /// Schedule makespan.
    pub makespan: u64,
    /// Per-stage wall-clock.
    pub stages: StageTimings,
    /// Every counter the cell recorded, sorted by name.
    pub counters: Vec<(String, u64)>,
}

/// A full profile run: instance parameters plus one entry per grid cell.
#[derive(Clone, Debug)]
pub struct ProfileReport {
    /// Trace seed.
    pub seed: u64,
    /// Fabric size (ports).
    pub ports: usize,
    /// Number of coflows in the trace.
    pub coflows: usize,
    /// The 12 profiled cells, in rule-major order.
    pub cells: Vec<ProfiledCell>,
}

/// Profiles the full 12-cell grid on `instance`.
///
/// Each cell gets a fresh registry window (`obs::reset` + enable), runs
/// ordering and scheduling sequentially, and snapshots its stage spans and
/// counters. Recording is left disabled afterwards.
pub fn run_profile(
    instance: &Instance,
    seed: u64,
    lp_opts: &SimplexOptions,
) -> ProfileReport {
    let mut cells = Vec::with_capacity(OrderRule::PAPER_RULES.len() * CASES.len());
    for &rule in &OrderRule::PAPER_RULES {
        for &(grouping, backfill) in &CASES {
            obs::reset();
            obs::set_enabled(true);
            let cell_start = Instant::now();
            let order = match try_compute_order_with(instance, rule, lp_opts) {
                Ok(order) => order,
                Err(e) => panic!("profile: {:?} order failed: {}", rule, e),
            };
            let outcome = run_with_order(instance, order, grouping, backfill);
            let total_ms = cell_start.elapsed().as_secs_f64() * 1e3;
            let snap = obs::snapshot();
            obs::set_enabled(false);
            cells.push(ProfiledCell {
                order: rule,
                grouping,
                backfill,
                objective: outcome.objective,
                makespan: outcome.makespan(),
                stages: StageTimings {
                    lp_build_ms: snap.span_total_ms("lp.build_model"),
                    lp_solve_ms: snap.span_total_ms("lp.solve"),
                    order_ms: snap.span_total_ms("sched.order"),
                    decompose_ms: snap.span_total_ms("matching.bvn_decompose")
                        + snap.span_total_ms("matching.bvn_decompose_maxmin"),
                    simulate_ms: snap.span_total_ms("sched.simulate"),
                    total_ms,
                },
                counters: {
                    let mut counters = snap.counters;
                    // Zero-delta counters are never registered (e.g. a
                    // presolve pass that eliminates nothing), but the
                    // report schema promises these keys in every cell.
                    for required in REQUIRED_COUNTERS {
                        counters.entry(required.to_string()).or_insert(0);
                    }
                    counters.into_iter().collect()
                },
            });
        }
    }
    ProfileReport {
        seed,
        ports: instance.ports(),
        coflows: instance.len(),
        cells,
    }
}

/// Serializes `report` as `coflow-bench-grid/1` JSON.
pub fn render_json(report: &ProfileReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {},", json::quote(SCHEMA));
    let _ = writeln!(out, "  \"seed\": {},", report.seed);
    let _ = writeln!(out, "  \"ports\": {},", report.ports);
    let _ = writeln!(out, "  \"coflows\": {},", report.coflows);
    out.push_str("  \"cells\": [\n");
    for (idx, cell) in report.cells.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"order\": {},", json::quote(cell.order.name()));
        let _ = writeln!(
            out,
            "      \"case\": {},",
            json::quote(case_label(cell.grouping, cell.backfill))
        );
        let _ = writeln!(out, "      \"grouping\": {},", cell.grouping);
        let _ = writeln!(out, "      \"backfill\": {},", cell.backfill);
        let _ = writeln!(out, "      \"objective\": {},", fmt_f64(cell.objective));
        let _ = writeln!(out, "      \"makespan\": {},", cell.makespan);
        out.push_str("      \"stages_ms\": {");
        for (i, stage) in STAGES.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{}: {}",
                json::quote(stage),
                fmt_f64(cell.stages.get(stage))
            );
        }
        out.push_str("},\n");
        out.push_str("      \"counters\": {");
        for (i, (name, value)) in cell.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {}", json::quote(name), value);
        }
        out.push_str("}\n");
        out.push_str(if idx + 1 < report.cells.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn num_f64(v: &JsonValue) -> Option<f64> {
    match v {
        JsonValue::Num(s) => s.parse().ok(),
        _ => None,
    }
}

/// Per-stage totals (sum over cells) of a parsed report, keyed by stage.
fn stage_sums(doc: &JsonValue) -> Result<Vec<(String, f64)>, String> {
    let Some(JsonValue::Arr(cells)) = doc.get("cells") else {
        return Err("report has no 'cells' array".to_string());
    };
    if cells.is_empty() {
        return Err("report has no cells".to_string());
    }
    let mut sums: Vec<(String, f64)> =
        STAGES.iter().map(|s| (s.to_string(), 0.0)).collect();
    for cell in cells {
        let Some(stages) = cell.get("stages_ms") else {
            return Err("cell has no 'stages_ms' object".to_string());
        };
        for (name, sum) in sums.iter_mut() {
            let value = stages
                .get(name)
                .and_then(num_f64)
                .ok_or_else(|| format!("stage '{}' missing or non-numeric", name))?;
            *sum += value;
        }
    }
    Ok(sums)
}

/// One per-stage comparison row from [`compare_reports`].
#[derive(Clone, Debug)]
pub struct StageDelta {
    /// Stage name.
    pub stage: String,
    /// Baseline total across cells, ms.
    pub baseline_ms: f64,
    /// Current total across cells, ms.
    pub current_ms: f64,
    /// True when this stage breaches the tolerance.
    pub regressed: bool,
}

/// Wall-clock noise floor: stages faster than this in both runs are never
/// flagged, whatever the ratio — a 0.2 ms → 0.5 ms blip is not a
/// regression signal on shared hardware.
pub const ABS_FLOOR_MS: f64 = 10.0;

/// Counter keys the report guarantees in every cell, zero-filled when the
/// cell never touched them (H_A/H_ρ cells solve no LP; a presolve pass may
/// eliminate nothing).
pub const REQUIRED_COUNTERS: [&str; 4] = [
    "lp.simplex.pivots",
    "lp.presolve.rows_removed",
    "matching.bvn.permutations",
    "netsim.fabric.slots",
];

/// Compares two serialized reports stage by stage (totals across cells).
/// A stage regresses when the current total exceeds the baseline by more
/// than `tolerance` (fractional, e.g. 0.2 = +20%) *and* the absolute
/// difference clears [`ABS_FLOOR_MS`].
pub fn compare_reports(
    baseline: &str,
    current: &str,
    tolerance: f64,
) -> Result<Vec<StageDelta>, String> {
    let base_doc = json::parse(baseline).map_err(|e| format!("baseline: {}", e))?;
    let cur_doc = json::parse(current).map_err(|e| format!("current: {}", e))?;
    for (label, doc) in [("baseline", &base_doc), ("current", &cur_doc)] {
        match doc.get("schema") {
            Some(JsonValue::Str(s)) if s == SCHEMA => {}
            other => {
                return Err(format!(
                    "{}: unsupported schema {:?} (expected {})",
                    label, other, SCHEMA
                ))
            }
        }
    }
    let base = stage_sums(&base_doc).map_err(|e| format!("baseline: {}", e))?;
    let cur = stage_sums(&cur_doc).map_err(|e| format!("current: {}", e))?;
    Ok(base
        .into_iter()
        .zip(cur)
        .map(|((stage, baseline_ms), (_, current_ms))| {
            let regressed = current_ms > baseline_ms * (1.0 + tolerance)
                && current_ms - baseline_ms > ABS_FLOOR_MS;
            StageDelta {
                stage,
                baseline_ms,
                current_ms,
                regressed,
            }
        })
        .collect())
}

/// Plain-text table of a profile run (stderr-friendly progress report).
pub fn render_profile(report: &ProfileReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== profile: {} ports, {} coflows, seed {} ==",
        report.ports, report.coflows, report.seed
    );
    let _ = writeln!(
        out,
        "{:<6} {:<4} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "order", "case", "objective", "lp_build", "lp_solve", "order", "decomp", "simulate", "total"
    );
    for c in &report.cells {
        let _ = writeln!(
            out,
            "{:<6} {:<4} {:>12.0} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            c.order.name(),
            case_label(c.grouping, c.backfill),
            c.objective,
            c.stages.lp_build_ms,
            c.stages.lp_solve_ms,
            c.stages.order_ms,
            c.stages.decompose_ms,
            c.stages.simulate_ms,
            c.stages.total_ms,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use coflow_workloads::{generate_trace, TraceConfig};

    fn tiny_report() -> ProfileReport {
        let inst = generate_trace(&TraceConfig::small(7));
        run_profile(&inst, 7, &SimplexOptions::default())
    }

    #[test]
    fn profile_covers_all_twelve_cells_with_required_counters() {
        let report = tiny_report();
        assert_eq!(report.cells.len(), 12);
        for cell in &report.cells {
            assert!(cell.stages.total_ms > 0.0);
            let counter = |name: &str| {
                cell.counters
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|&(_, v)| v)
            };
            // The schema-promised keys are present in every cell, even
            // where the underlying counter never fired.
            for required in REQUIRED_COUNTERS {
                assert!(
                    counter(required).is_some(),
                    "cell missing required counter {}",
                    required
                );
            }
            // Every cell decomposes and simulates.
            assert!(counter("matching.bvn.permutations").unwrap_or(0) > 0);
            assert!(counter("netsim.fabric.slots").unwrap_or(0) > 0);
            if cell.order == OrderRule::LpBased {
                assert!(
                    counter("lp.simplex.pivots").unwrap_or(0) > 0,
                    "H_LP cells must record simplex pivots"
                );
                assert!(cell.stages.lp_solve_ms > 0.0);
            }
        }
    }

    #[test]
    fn report_json_round_trips_and_self_compares_clean() {
        let report = tiny_report();
        let rendered = render_json(&report);
        let doc = json::parse(&rendered).expect("profile JSON must parse");
        assert_eq!(
            doc.get("schema"),
            Some(&JsonValue::Str(SCHEMA.to_string()))
        );
        let Some(JsonValue::Arr(cells)) = doc.get("cells") else {
            panic!("cells array missing");
        };
        assert_eq!(cells.len(), 12);
        // A report never regresses against itself.
        let deltas = compare_reports(&rendered, &rendered, 0.2).expect("compare");
        assert_eq!(deltas.len(), STAGES.len());
        assert!(deltas.iter().all(|d| !d.regressed));
    }

    #[test]
    fn comparison_flags_large_slow_stages_only() {
        let report = tiny_report();
        let baseline = render_json(&report);
        let mut slowed = report.clone();
        for cell in &mut slowed.cells {
            cell.stages.simulate_ms = cell.stages.simulate_ms * 10.0 + 50.0;
            cell.stages.total_ms += 50.0;
        }
        let current = render_json(&slowed);
        let deltas = compare_reports(&baseline, &current, 0.2).expect("compare");
        let sim = deltas.iter().find(|d| d.stage == "simulate").unwrap();
        assert!(sim.regressed, "10x + 50ms/cell must breach 20%+floor");
        // Sub-floor stages stay green even at huge ratios.
        let lp = deltas.iter().find(|d| d.stage == "lp_build").unwrap();
        assert!(!lp.regressed);
    }

    #[test]
    fn comparison_rejects_foreign_schemas() {
        let report = render_json(&tiny_report());
        let err = compare_reports("{\"schema\": \"other/9\", \"cells\": []}", &report, 0.2);
        assert!(err.is_err());
    }
}
