//! Plain-text rendering of experiment results, mirroring the layout of the
//! paper's tables and figures.

use crate::figures::{Fig2a, Fig2b};
use crate::lowerbound::LowerBoundReport;
use crate::ratios::RatioReport;
use crate::table1::{Table1Block, ORDERS};

/// Case labels in Table 1 row order.
pub const CASE_ROWS: [&str; 4] = ["(a)", "(b)", "(c)", "(d)"];

/// Renders one Table 1 block in the paper's layout (cases as rows, orders
/// as columns).
pub fn render_table1_block(block: &Table1Block) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "M0 >= {:<3}  weights: {:<7} ({} coflows)\n",
        block.filter, block.weights, block.num_coflows
    ));
    out.push_str("  case |");
    for rule in ORDERS {
        out.push_str(&format!(" {:>8} |", rule.name()));
    }
    out.push('\n');
    out.push_str("  -----|----------|----------|----------|\n");
    for (case_idx, label) in CASE_ROWS.iter().enumerate() {
        out.push_str(&format!("  {:<4} |", label));
        for (order_idx, _) in ORDERS.iter().enumerate() {
            out.push_str(&format!(" {:>8.2} |", block.normalized[order_idx][case_idx]));
        }
        out.push('\n');
    }
    out
}

/// Renders Figure 2a as percentages of the base case.
pub fn render_fig2a(fig: &Fig2a) -> String {
    let mut out = format!(
        "Figure 2a — % of base case (a); M0 >= {}, random weights\n",
        fig.filter
    );
    out.push_str("  order |   (a) |   (b) |   (c) |   (d) |\n");
    for (rule, pct) in &fig.rows {
        out.push_str(&format!(
            "  {:<5} | {:>5.1} | {:>5.1} | {:>5.1} | {:>5.1} |\n",
            rule.name(),
            pct[0],
            pct[1],
            pct[2],
            pct[3]
        ));
    }
    out
}

/// Renders Figure 2b (case (d), normalized to H_LP).
pub fn render_fig2b(fig: &Fig2b) -> String {
    let mut out = format!(
        "Figure 2b — case (d) costs normalized to H_LP; M0 >= {}\n",
        fig.filter
    );
    out.push_str("  weights |   H_A  |  H_rho |  H_LP  |\n");
    for (scheme, vals) in &fig.rows {
        out.push_str(&format!(
            "  {:<7} | {:>6.2} | {:>6.2} | {:>6.2} |\n",
            scheme, vals[0], vals[1], vals[2]
        ));
    }
    out
}

/// Renders the lower-bound (§4.2) report.
pub fn render_lowerbound(r: &LowerBoundReport) -> String {
    format!(
        "LP-EXP lower-bound experiment (paper reports ratio ~= 0.9447)\n\
         \x20 cost(H_LP, d)          = {:.1}\n\
         \x20 cost(H_rho, d)         = {:.1}\n\
         \x20 cost(rematch ext.)     = {:.1}\n\
         \x20 cost(greedy baseline)  = {:.1}\n\
         \x20 LP-EXP lower bound     = {:.1}\n\
         \x20 interval-LP bound      = {:.1}\n\
         \x20 load bound             = {:.1}\n\
         \x20 bound / cost(H_LP)     = {:.4}\n\
         \x20 bound / cost(H_rho)    = {:.4}\n\
         \x20 bound / cost(rematch)  = {:.4}\n\
         \x20 bound / cost(greedy)   = {:.4}\n",
        r.hlp_cost,
        r.hrho_cost,
        r.rematch_cost,
        r.greedy_cost,
        r.lp_exp_bound,
        r.interval_bound,
        r.load_bound,
        r.ratio_hlp,
        r.ratio_hrho,
        r.ratio_rematch,
        r.ratio_greedy
    )
}

/// Renders the approximation-ratio report.
pub fn render_ratios(r: &RatioReport) -> String {
    format!(
        "Approximation ratios vs exact optimum ({} tiny instances)\n\
         \x20 deterministic: mean {:.3}, worst {:.3}  (Cor. 1 bound {:.2})\n\
         \x20 randomized:    mean {:.3}, worst {:.3}  (Cor. 2 bound {:.2})\n",
        r.instances, r.det_mean, r.det_max, r.det_bound, r.rand_mean, r.rand_max, r.rand_bound
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table1::run_block;
    use coflow_workloads::{generate_trace, TraceConfig, WeightScheme};

    #[test]
    fn table_rendering_contains_all_cells() {
        let trace = generate_trace(&TraceConfig::small(2));
        let block = run_block(&trace, 0, WeightScheme::Equal);
        let text = render_table1_block(&block);
        assert!(text.contains("H_A"));
        assert!(text.contains("H_LP"));
        assert!(text.contains("(d)"));
        // Normalizer cell (H_LP, d) renders as 1.00.
        assert!(text.contains("1.00"));
    }
}
