//! Integrality experiment (§1.1's modeling claim).
//!
//! The paper chooses *integral* matchings per slot over continuous rate
//! allocation, arguing the restriction costs a "provably negligible
//! degradation of performance" unless the horizon is exceptionally short.
//! This experiment quantifies that choice: compare the fluid strict-
//! priority schedule (ports drain continuously; `C_k = V_k`) against the
//! integral matching schedules on the same order.

use coflow::bounds::fluid_priority_objective;
use coflow::ordering::{compute_order, OrderRule};
use coflow::sched::greedy::run_greedy;
use coflow::sched::{run_with_order, run_with_order_opts, ExecOptions};
use coflow::Instance;

/// The integrality comparison on one instance/order.
#[derive(Clone, Debug)]
pub struct IntegralityReport {
    /// Fluid strict-priority cost (rate-based relaxation of the schedule).
    pub fluid_cost: f64,
    /// Integral priority-greedy cost (the closest integral analogue of the
    /// fluid schedule).
    pub greedy_cost: f64,
    /// Algorithm 2 (+backfill) cost.
    pub grouped_cost: f64,
    /// Algorithm 2 with the work-conserving rematch extension.
    pub rematch_cost: f64,
    /// `greedy / fluid`: the integrality degradation of a work-conserving
    /// schedule — the quantity §1.1 claims is near 1.
    pub greedy_over_fluid: f64,
    /// `grouped / fluid`: total overhead of the provable pipeline.
    pub grouped_over_fluid: f64,
}

/// Runs the comparison (requires zero release dates).
pub fn run_integrality(instance: &Instance) -> IntegralityReport {
    let order = compute_order(instance, OrderRule::LpBased);
    let fluid = fluid_priority_objective(instance, &order);
    let greedy = run_greedy(instance, order.clone());
    let grouped = run_with_order(instance, order.clone(), true, true);
    let rematch = run_with_order_opts(
        instance,
        order,
        true,
        ExecOptions {
            backfill: true,
            rematch: true,
            ..ExecOptions::default()
        },
    );
    IntegralityReport {
        fluid_cost: fluid,
        greedy_cost: greedy.objective,
        grouped_cost: grouped.objective,
        rematch_cost: rematch.objective,
        greedy_over_fluid: greedy.objective / fluid,
        grouped_over_fluid: grouped.objective / fluid,
    }
}

/// Renders the report.
pub fn render_integrality(r: &IntegralityReport) -> String {
    format!(
        "Integral matchings vs fluid rates (Section 1.1's modeling claim)\n\
         \x20 fluid strict-priority (C_k = V_k) = {:.0}\n\
         \x20 integral greedy (same order)      = {:.0}  ({:.3}x fluid)\n\
         \x20 Algorithm 2 + backfill            = {:.0}  ({:.3}x fluid)\n\
         \x20 + work-conserving rematch         = {:.0}\n",
        r.fluid_cost,
        r.greedy_cost,
        r.greedy_over_fluid,
        r.grouped_cost,
        r.grouped_over_fluid,
        r.rematch_cost,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use coflow_workloads::{assign_weights, generate_trace, TraceConfig, WeightScheme};

    #[test]
    fn integrality_gap_of_greedy_is_small() {
        let inst = assign_weights(
            &generate_trace(&TraceConfig::small(17)),
            WeightScheme::RandomPermutation { seed: 17 },
        );
        let r = run_integrality(&inst);
        // Fluid strict priority is not a lower bound over out-of-order
        // completions: work-conserving greedy can finish light coflows
        // ahead of their fluid completion, so the ratio may dip slightly
        // below 1. It should still be near 1 on both sides.
        assert!(r.greedy_over_fluid >= 0.95, "{}", r.greedy_over_fluid);
        assert!(
            r.greedy_over_fluid < 2.0,
            "integral greedy should be within 2x of fluid: {}",
            r.greedy_over_fluid
        );
        assert!(r.grouped_over_fluid >= r.greedy_over_fluid - 0.35);
    }
}
