//! Figures 2a and 2b of the paper.
//!
//! * Figure 2a: for each order, the total weighted completion time of cases
//!   (b), (c), (d) as a *percentage of the base case (a)* — random weights,
//!   `M0 ≥ 50` filter. The paper finds grouping saves up to ~27% and
//!   backfilling up to ~9%, with (d) best.
//! * Figure 2b: the costs of the three orders under case (d), for both
//!   weight schemes, normalized to `H_LP` — the paper finds `H_ρ` and
//!   `H_LP` beat `H_A` by up to ~8× and sit within a few percent of each
//!   other.

use crate::grid::{run_grid, CASES};
use crate::table1::ORDERS;
use coflow::ordering::OrderRule;
use coflow::Instance;
use coflow_workloads::{assign_weights, filter_by_width, WeightScheme};

/// Figure 2a data: per order, the percentage of the base case for each of
/// the four cases (case (a) is 100 by definition).
#[derive(Clone, Debug)]
pub struct Fig2a {
    /// Width filter used.
    pub filter: usize,
    /// Rows: `(order, [pct_a, pct_b, pct_c, pct_d])`.
    pub rows: Vec<(OrderRule, [f64; 4])>,
}

/// Runs Figure 2a (random weights, `M0 ≥ filter`).
pub fn run_fig2a(trace: &Instance, filter: usize, weight_seed: u64) -> Fig2a {
    let filtered = filter_by_width(trace, filter);
    let weighted = assign_weights(
        &filtered,
        WeightScheme::RandomPermutation { seed: weight_seed },
    );
    let grid = run_grid(&weighted, &ORDERS);
    let rows = ORDERS
        .iter()
        .map(|&rule| {
            let base = grid[&(rule, false, false)].objective;
            let mut pct = [0.0; 4];
            for (idx, &(g, b)) in CASES.iter().enumerate() {
                pct[idx] = 100.0 * grid[&(rule, g, b)].objective / base;
            }
            (rule, pct)
        })
        .collect();
    Fig2a { filter, rows }
}

/// Figure 2b data: cost of each order under case (d), normalized to `H_LP`,
/// for each weight scheme.
#[derive(Clone, Debug)]
pub struct Fig2b {
    /// Width filter used.
    pub filter: usize,
    /// Rows: `(scheme_name, [H_A, H_rho, H_LP] normalized)`.
    pub rows: Vec<(&'static str, [f64; 3])>,
}

/// Runs Figure 2b (`M0 ≥ filter`, both weight schemes, case (d)).
pub fn run_fig2b(trace: &Instance, filter: usize, weight_seed: u64) -> Fig2b {
    let filtered = filter_by_width(trace, filter);
    let mut rows = Vec::new();
    for scheme in [
        WeightScheme::Equal,
        WeightScheme::RandomPermutation { seed: weight_seed },
    ] {
        let weighted = assign_weights(&filtered, scheme);
        let grid = run_grid(&weighted, &ORDERS);
        let hlp = grid[&(OrderRule::LpBased, true, true)].objective;
        let vals = [
            grid[&(OrderRule::Arrival, true, true)].objective / hlp,
            grid[&(OrderRule::LoadOverWeight, true, true)].objective / hlp,
            1.0,
        ];
        rows.push((scheme.name(), vals));
    }
    Fig2b { filter, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coflow_workloads::{generate_trace, TraceConfig};

    #[test]
    fn fig2a_base_case_is_100_percent() {
        let trace = generate_trace(&TraceConfig::small(6));
        let fig = run_fig2a(&trace, 0, 1);
        for (_, pct) in &fig.rows {
            assert!((pct[0] - 100.0).abs() < 1e-9);
            // Grouping + backfilling should not exceed the base much.
            assert!(pct[3] <= 102.0, "case (d) at {}%", pct[3]);
        }
    }

    #[test]
    fn fig2b_hlp_column_is_one() {
        let trace = generate_trace(&TraceConfig::small(6));
        let fig = run_fig2b(&trace, 0, 1);
        for (_, vals) in &fig.rows {
            assert_eq!(vals[2], 1.0);
            assert!(vals[0] > 0.0 && vals[1] > 0.0);
        }
    }
}
