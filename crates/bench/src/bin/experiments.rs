//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! experiments [table1|fig2a|fig2b|lpexp|ratios|all] [--seed N] [--telemetry PATH]
//! experiments profile [--out PATH] [--trace PATH] [--baseline PATH]
//!                     [--tolerance F] [--full] [--sequential] [--seed N]
//!                     [--mem-out PATH] [--mem-baseline PATH] [--mem-tolerance F]
//! experiments explain [--out PATH] [--svg PATH] [--trace PATH]
//!                     [--faults RATE] [--severity LEVEL]
//!                     [--expect-starvation] [--validate PATH] [--seed N]
//! experiments pin [--out PATH] [--check PATH] [--tolerance F] [--seed N]
//! experiments scale [--ports LIST] [--coflows LIST] [--cell MxN]
//!                   [--window W] [--out BENCH_scale.json] [--check PATH]
//!                   [--tolerance F] [--mem-tolerance F] [--seed N]
//! experiments chaos [--kills N] [--windows N] [--faults RATE]
//!                   [--out PATH] [--validate PATH] [--seed N]
//! experiments tournament [--policies a,b,c|all] [--out BENCH_tournament.json]
//!                        [--check PATH] [--tolerance F] [--seed N]
//! experiments faults [--policies a,b,c] [--seed N]
//! experiments diff [A] [B] [--tolerance F] [--out PATH] [--ledger PATH]
//! experiments report [--out dash.html] [--ledger PATH]
//! experiments verdict --gate NAME [--status pass|fail] [--verdict K=V]...
//!                     [--note STR] [--ledger PATH]
//! ```
//!
//! Every workload subcommand appends one self-contained `coflow-ledger/1`
//! record to the run ledger (default `LEDGER.ndjson`; `--ledger PATH` or
//! `COFLOW_LEDGER` overrides, `--ledger none` disables): command, seed,
//! config fingerprint, git provenance, per-stage wall-clock and
//! allocation attribution, peak RSS, per-cell objectives, and gate
//! verdicts. Ledger appends are non-fatal — a read-only checkout still
//! runs every experiment.
//!
//! `diff A B` compares two runs. `A`/`B` are ledger selectors (`latest`,
//! `prev`, `~N`, `#SEQ`, `green`) or paths to committed reports
//! (`coflow-bench-grid/3`, `coflow-bench-mem/1`, `coflow-pins/1`); the
//! default is `prev latest`. It prints a per-metric table, optionally
//! writes a `coflow-diff/1` document (`--out`), and exits 1 on any
//! regression past `--tolerance` (default 0.5; objectives are bit-exact
//! regardless of tolerance) — so it doubles as a gate.
//!
//! `report` renders the whole ledger as a self-contained HTML dashboard
//! (inline CSS + SVG, no external assets): per-stage trend sparklines,
//! memory trajectories, objective comparison tables, gate-verdict
//! history. `verdict` appends a gate outcome record; the
//! `scripts/check-*.sh` gates call it on exit.
//!
//! `--telemetry PATH` (any subcommand) installs the streaming NDJSON sink:
//! one self-contained `coflow-telemetry/1` line per heartbeat appended (and
//! flushed) to `PATH` while the run progresses — engine decision epochs,
//! fault replans, per-cell profile samples, report writes. Because every
//! line is flushed before the next heartbeat, the stream is valid NDJSON
//! even after a SIGINT. Tail it live with `scripts/watch-telemetry.sh PATH`.
//!
//! `profile` runs the 12-cell grid with the `obs` registry enabled and
//! writes a per-stage timing/counter report (`BENCH_grid.json`, schema
//! `coflow-bench-grid/3` — `/3` adds a per-cell `mem` object: peak live
//! bytes, peak RSS, per-stage allocation attribution). With `--baseline`
//! it diffs against a committed report and exits 1 on a per-stage
//! regression beyond `--tolerance` (default 0.2 = +20%); `--trace`
//! additionally writes a chrome://tracing view of the last cell; `--full`
//! profiles the paper's 150-port fabric instead of the default reduced
//! scale. `--mem-out` writes the compact `coflow-bench-mem/1` memory
//! report; `--mem-baseline` gates allocation counts/bytes and peak live
//! bytes against a committed copy within `--mem-tolerance` (default 0.25 =
//! +25%; peak RSS is reported but never gated — it is machine-dependent).
//! `scripts/check-mem.sh` runs the gate against `BENCH_mem.json`.
//!
//! `explain` runs the schedule-forensics pipeline over the same grid:
//! per-coflow LP attribution, anomaly detectors, and a
//! `coflow-diagnostics/1` JSON report. It exits 1 when any detector fires
//! at or above `--severity` (default `warning`). `--validate PATH` skips
//! the run and validates an existing report instead (used by
//! `scripts/check-explain.sh`); `--faults RATE` adds a fault-injected
//! section; `--svg` writes the attribution cell's port-utilization
//! heatmap; `--trace` writes the chrome trace (spans + anomaly instants).
//!
//! `chaos` runs the crash-safety harness on the 60-port cell: every engine
//! policy is killed at randomized decision epochs, checkpointed to a
//! `coflow-snapshot/1` document, restored from the re-parsed document, and
//! required to finish **bit-identically** to an uninterrupted run, with
//! demand-conservation and monotone-progress invariants checked at every
//! kill. `--windows N` adds the adversarial worst-window search (targeted
//! outages vs matched-budget random plans); `--validate PATH` checks an
//! existing `coflow-chaos/1` report instead of running (used by
//! `scripts/check-chaos.sh`). The report lands at `--out` (default
//! `BENCH_chaos.json`).
//!
//! All subcommands install a SIGINT handler: an interrupt finishes the
//! current unit of work, writes whatever partial report exists via the
//! shared atomic write-then-rename sink, and exits 130.
//!
//! `scale` runs the streaming scale sweep (`coflow-bench-scale/1`): each
//! `(ports, coflows)` cell streams its workload through windowed
//! admission, the ordering ladder (windowed sparse LP up to 128 ports,
//! Smith-rule `ρ/w` beyond), and the O(1)-per-flow sparse executor —
//! recording wall-clock per stage, peak RSS, allocator counts, and the
//! deterministic objective. The default cells form the committed
//! `BENCH_scale.json` curve up to 10,000 ports and 10⁶ streamed coflows.
//! `--cell 1000x10000 --check BENCH_scale.json` re-runs one cell and
//! gates it against the committed curve (wall +20% over a 10 ms floor,
//! allocations +25% over the mem-gate floors, objectives bit-exact) —
//! that invocation is `scripts/check-scale.sh`. `--ports`/`--coflows`
//! sweep a custom cross product; `--window` sets the admission window.
//!
//! `pin` recomputes the engine's pinned objectives — the 12-cell grid, the
//! online scheduler (fixed and stale priorities), the greedy baseline, and
//! the fault-injected combinations — on the canonical arrivals instance.
//! With `--check` it compares against a committed `BENCH_pins.json` and
//! exits 1 unless every objective matches **bit for bit** and the
//! engine-driven section is no slower than baseline by `--tolerance`
//! (default 1.0 = +100%, floored at 50 ms); with `--out` it writes a fresh
//! pin file (used by `scripts/check-perf.sh`).
//!
//! `tournament` races a registry selection of schedulers (`--policies
//! a,b,c`, default `all` = the canonical six) across the whole harness on
//! the canonical arrivals instance: a clean round (TWCT and measured
//! approximation ratio against the interval-LP lower bound, per-policy
//! wall-clock), a fault round under one shared rate-0.20 plan (objective
//! inflation over the surviving coflows), and a windowed scale round where
//! each policy's ordering analog streams the 96×960 cell through the
//! sparse executor. The `coflow-tournament/1` report lands at `--out`
//! (default `BENCH_tournament.json`), is self-validated (every ratio ≥ 1
//! and within the policy's proven bound), and with `--check` is diffed
//! against the committed golden — objectives/ratios bit-exact, wall-clock
//! within `--tolerance` (default 0.35) over the absolute floor — which is
//! `scripts/check-tournament.sh`. The `faults` subcommand accepts the same
//! `--policies` list to extend its engine-policy table beyond the default
//! online/online-stale/greedy trio.
//!
//! Table 1 and the figures run on the synthetic Facebook-like trace at the
//! documented reduced scale; `lpexp` runs on a further reduced instance
//! because (LP-EXP) is exponential in the horizon; `ratios` measures true
//! approximation ratios on tiny instances via the exact solver.

use coflow_bench::faults::{
    render_fault_policies, render_faults, run_fault_policies, run_fault_policies_selected,
    run_faults,
};
use coflow_bench::figures::{run_fig2a, run_fig2b};
use coflow_bench::lowerbound::run_lowerbound;
use coflow_bench::paper_scale_config;
use coflow_lp::SimplexOptions;
use coflow_bench::ratios::run_ratios;
use coflow_bench::report::{
    render_fig2a, render_fig2b, render_lowerbound, render_ratios, render_table1_block,
};
use coflow_workloads::{assign_weights, generate_trace, TraceConfig, WeightScheme};

/// Options of the `profile` subcommand.
struct ProfileArgs {
    out: String,
    trace: Option<String>,
    baseline: Option<String>,
    tolerance: f64,
    full: bool,
    sequential: bool,
    mem_out: Option<String>,
    mem_baseline: Option<String>,
    mem_tolerance: f64,
}

impl Default for ProfileArgs {
    fn default() -> Self {
        ProfileArgs {
            out: "BENCH_grid.json".to_string(),
            trace: None,
            baseline: None,
            tolerance: 0.2,
            full: false,
            sequential: false,
            mem_out: None,
            mem_baseline: None,
            mem_tolerance: 0.25,
        }
    }
}

/// Options of the `scale` subcommand.
struct ScaleArgs {
    out: String,
    check: Option<String>,
    ports: Option<Vec<usize>>,
    coflows: Option<Vec<usize>>,
    cell: Option<(usize, usize)>,
    window: usize,
    wall_tolerance: f64,
    alloc_tolerance: f64,
}

impl Default for ScaleArgs {
    fn default() -> Self {
        ScaleArgs {
            out: "BENCH_scale.json".to_string(),
            check: None,
            ports: None,
            coflows: None,
            cell: None,
            window: coflow_bench::scale::DEFAULT_WINDOW,
            wall_tolerance: 0.2,
            alloc_tolerance: 0.25,
        }
    }
}

/// Options of the `pin` subcommand.
struct PinArgs {
    out: Option<String>,
    check: Option<String>,
    tolerance: f64,
}

impl Default for PinArgs {
    fn default() -> Self {
        PinArgs {
            out: None,
            check: None,
            tolerance: 1.0,
        }
    }
}

/// Options of the `chaos` subcommand.
struct ChaosArgs {
    out: String,
    kills: usize,
    windows: usize,
    fault_rate: f64,
    validate: Option<String>,
}

impl Default for ChaosArgs {
    fn default() -> Self {
        ChaosArgs {
            out: "BENCH_chaos.json".to_string(),
            kills: 4,
            windows: 0,
            fault_rate: 0.3,
            validate: None,
        }
    }
}

/// Options of the `tournament` subcommand.
struct TournamentArgs {
    out: String,
    check: Option<String>,
    tolerance: f64,
    policies: String,
}

impl Default for TournamentArgs {
    fn default() -> Self {
        TournamentArgs {
            out: "BENCH_tournament.json".to_string(),
            check: None,
            tolerance: 0.35,
            policies: "all".to_string(),
        }
    }
}

/// Options of the `explain` subcommand.
struct ExplainArgs {
    out: String,
    svg: Option<String>,
    trace: Option<String>,
    faults: Option<f64>,
    severity: coflow::Severity,
    expect_starvation: bool,
    validate: Option<String>,
}

impl Default for ExplainArgs {
    fn default() -> Self {
        ExplainArgs {
            out: "BENCH_diagnostics.json".to_string(),
            svg: None,
            trace: None,
            faults: None,
            severity: coflow::Severity::Warning,
            expect_starvation: false,
            validate: None,
        }
    }
}

fn main() {
    obs::install_sigint_handler();
    let started = std::time::Instant::now();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Option<String> = None;
    let mut extras: Vec<String> = Vec::new();
    let mut seed: u64 = 2015;
    let mut profile_args = ProfileArgs::default();
    let mut explain_args = ExplainArgs::default();
    let mut pin_args = PinArgs::default();
    let mut chaos_args = ChaosArgs::default();
    let mut scale_args = ScaleArgs::default();
    let mut tournament_args = TournamentArgs::default();
    let mut fault_policies_flag: Option<String> = None;
    let mut ledger_flag: Option<String> = None;
    let mut out_flag: Option<String> = None;
    let mut tolerance_flag: Option<f64> = None;
    let mut gate_flag: Option<String> = None;
    let mut status_flag: Option<String> = None;
    let mut note_flag = String::new();
    let mut verdict_kvs: Vec<(String, String)> = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        let mut value_of = |flag: &str| -> String {
            match iter.next() {
                Some(v) => v.clone(),
                None => {
                    eprintln!("error: {} needs a value", flag);
                    std::process::exit(2);
                }
            }
        };
        match a.as_str() {
            "--seed" => {
                let value = value_of("--seed");
                seed = match value.parse() {
                    Ok(s) => s,
                    Err(_) => {
                        eprintln!("error: --seed must be an integer, got '{}'", value);
                        std::process::exit(2);
                    }
                };
            }
            "--out" => {
                let value = value_of("--out");
                profile_args.out = value.clone();
                explain_args.out = value.clone();
                chaos_args.out = value.clone();
                pin_args.out = Some(value.clone());
                scale_args.out = value.clone();
                tournament_args.out = value.clone();
                out_flag = Some(value);
            }
            "--ports" => scale_args.ports = Some(parse_usize_list(&value_of("--ports"), "--ports")),
            "--coflows" => {
                scale_args.coflows = Some(parse_usize_list(&value_of("--coflows"), "--coflows"))
            }
            "--cell" => {
                let value = value_of("--cell");
                let parsed = value.split_once('x').and_then(|(m, n)| {
                    Some((m.trim().parse().ok()?, n.trim().parse().ok()?))
                });
                scale_args.cell = match parsed {
                    Some(cell) => Some(cell),
                    None => {
                        eprintln!("error: --cell needs PORTSxCOFLOWS (e.g. 1000x10000), got '{}'", value);
                        std::process::exit(2);
                    }
                };
            }
            "--window" => {
                let value = value_of("--window");
                scale_args.window = match value.parse() {
                    Ok(w) if w > 0 => w,
                    _ => {
                        eprintln!("error: --window must be a positive integer, got '{}'", value);
                        std::process::exit(2);
                    }
                };
            }
            "--ledger" => ledger_flag = Some(value_of("--ledger")),
            "--gate" => gate_flag = Some(value_of("--gate")),
            "--status" => status_flag = Some(value_of("--status")),
            "--note" => note_flag = value_of("--note"),
            "--verdict" => {
                let value = value_of("--verdict");
                match value.split_once('=') {
                    Some((k, v)) => verdict_kvs.push((k.to_string(), v.to_string())),
                    None => {
                        eprintln!("error: --verdict needs KEY=VALUE, got '{}'", value);
                        std::process::exit(2);
                    }
                }
            }
            "--kills" => {
                let value = value_of("--kills");
                chaos_args.kills = match value.parse() {
                    Ok(k) => k,
                    Err(_) => {
                        eprintln!("error: --kills must be an integer, got '{}'", value);
                        std::process::exit(2);
                    }
                };
            }
            "--windows" => {
                let value = value_of("--windows");
                chaos_args.windows = match value.parse() {
                    Ok(w) => w,
                    Err(_) => {
                        eprintln!("error: --windows must be an integer, got '{}'", value);
                        std::process::exit(2);
                    }
                };
            }
            "--trace" => {
                let value = value_of("--trace");
                profile_args.trace = Some(value.clone());
                explain_args.trace = Some(value);
            }
            "--baseline" => profile_args.baseline = Some(value_of("--baseline")),
            "--mem-out" => profile_args.mem_out = Some(value_of("--mem-out")),
            "--mem-baseline" => profile_args.mem_baseline = Some(value_of("--mem-baseline")),
            "--mem-tolerance" => {
                let value = value_of("--mem-tolerance");
                let parsed = match value.parse() {
                    Ok(t) => t,
                    Err(_) => {
                        eprintln!("error: --mem-tolerance must be a number, got '{}'", value);
                        std::process::exit(2);
                    }
                };
                profile_args.mem_tolerance = parsed;
                scale_args.alloc_tolerance = parsed;
            }
            "--telemetry" => {
                let value = value_of("--telemetry");
                if let Err(e) = obs::telemetry::install(&value) {
                    eprintln!("error: opening telemetry sink {}: {}", value, e);
                    std::process::exit(2);
                }
            }
            "--svg" => explain_args.svg = Some(value_of("--svg")),
            "--faults" => {
                let value = value_of("--faults");
                explain_args.faults = match value.parse() {
                    Ok(r) => Some(r),
                    Err(_) => {
                        eprintln!("error: --faults must be a rate, got '{}'", value);
                        std::process::exit(2);
                    }
                };
                if let Some(r) = explain_args.faults {
                    chaos_args.fault_rate = r;
                }
            }
            "--severity" => {
                let value = value_of("--severity");
                explain_args.severity = match coflow::Severity::parse(&value) {
                    Some(s) => s,
                    None => {
                        eprintln!(
                            "error: --severity must be info|warning|critical, got '{}'",
                            value
                        );
                        std::process::exit(2);
                    }
                };
            }
            "--expect-starvation" => explain_args.expect_starvation = true,
            "--validate" => {
                let value = value_of("--validate");
                explain_args.validate = Some(value.clone());
                chaos_args.validate = Some(value);
            }
            "--check" => {
                let value = value_of("--check");
                pin_args.check = Some(value.clone());
                scale_args.check = Some(value.clone());
                tournament_args.check = Some(value);
            }
            "--policies" => {
                let value = value_of("--policies");
                tournament_args.policies = value.clone();
                fault_policies_flag = Some(value);
            }
            "--tolerance" => {
                let value = value_of("--tolerance");
                let parsed: f64 = match value.parse() {
                    Ok(t) => t,
                    Err(_) => {
                        eprintln!("error: --tolerance must be a number, got '{}'", value);
                        std::process::exit(2);
                    }
                };
                profile_args.tolerance = parsed;
                pin_args.tolerance = parsed;
                scale_args.wall_tolerance = parsed;
                tournament_args.tolerance = parsed;
                tolerance_flag = Some(parsed);
            }
            "--full" => profile_args.full = true,
            "--sequential" => profile_args.sequential = true,
            other => {
                // First positional selects the subcommand; the rest are
                // subcommand operands (the diff sides).
                if which.is_none() {
                    which = Some(other.to_string());
                } else {
                    extras.push(other.to_string());
                }
            }
        }
    }
    let which = which.unwrap_or_else(|| "all".to_string());
    let ledger = coflow_bench::ledger::ledger_path(ledger_flag.as_deref());

    match which.as_str() {
        "table1" => table1(seed),
        "fig2a" => fig2a(seed),
        "fig2b" => fig2b(seed),
        "lpexp" => lpexp(seed),
        "ratios" => ratios(seed),
        "gridsweep" => gridsweep(seed),
        "integrality" => integrality(seed),
        "arrivals" => arrivals(seed),
        "faults" => faults(seed, fault_policies_flag.as_deref()),
        "profile" => profile(seed, &profile_args, &ledger, started),
        "explain" => explain(seed, &explain_args),
        "pin" => pin(seed, &pin_args, &ledger, started),
        "scale" => scale(seed, &scale_args, &ledger, started),
        "chaos" => chaos(seed, &chaos_args),
        "tournament" => tournament(seed, &tournament_args, &ledger, started),
        "diff" => diff_cmd(&extras, tolerance_flag, &ledger, out_flag.as_deref()),
        "report" => report_cmd(&ledger, out_flag.as_deref()),
        "verdict" => verdict_cmd(
            gate_flag.as_deref(),
            status_flag.as_deref(),
            verdict_kvs,
            &note_flag,
            &ledger,
        ),
        "all" => {
            table1(seed);
            fig2a(seed);
            fig2b(seed);
            lpexp(seed);
            ratios(seed);
            gridsweep(seed);
            integrality(seed);
            arrivals(seed);
            faults(seed, None);
        }
        other => {
            eprintln!(
                "unknown experiment '{}'; expected table1|fig2a|fig2b|lpexp|ratios|gridsweep|integrality|arrivals|faults|tournament|profile|explain|pin|scale|chaos|diff|report|verdict|all",
                other
            );
            std::process::exit(2);
        }
    }

    // The simple experiment subcommands record a base run entry (workload
    // identity + wall-clock + memory marks); profile and pin append their
    // own enriched records above, and diff/report/verdict are not runs.
    if matches!(
        which.as_str(),
        "table1"
            | "fig2a"
            | "fig2b"
            | "lpexp"
            | "ratios"
            | "gridsweep"
            | "integrality"
            | "arrivals"
            | "faults"
            | "explain"
            | "chaos"
            | "all"
    ) {
        let mut rec = coflow_bench::ledger::base_record(&which, "", seed, "");
        rec.elapsed_ms = started.elapsed().as_secs_f64() * 1000.0;
        append_ledger(&ledger, rec);
    }
}

/// Appends one record to the run ledger, warning (never failing) on I/O
/// trouble: observability must not take an experiment down.
fn append_ledger(ledger: &Option<String>, mut rec: obs::ledger::LedgerRecord) {
    let Some(path) = ledger else { return };
    match obs::ledger::append(path, &mut rec) {
        Ok(seq) => println!("# ledger: appended {} record seq {} to {}", rec.kind, seq, path),
        Err(e) => eprintln!("warning: ledger append failed: {}", e),
    }
}

/// Resolves one side of a diff: an existing file path is parsed as a
/// committed report; anything else is a ledger selector.
fn diff_side(
    spec: &str,
    ledger: &Option<String>,
    cache: &mut Option<Vec<obs::ledger::LedgerRecord>>,
) -> coflow_bench::diff::DiffSide {
    use coflow_bench::diff::{side_from_path, DiffSide};
    if std::path::Path::new(spec).is_file() {
        match side_from_path(spec) {
            Ok(side) => return side,
            Err(e) => {
                eprintln!("error: {}", e);
                std::process::exit(2);
            }
        }
    }
    let Some(path) = ledger else {
        eprintln!("error: ledger disabled and '{}' is not a report file", spec);
        std::process::exit(2);
    };
    if cache.is_none() {
        match obs::ledger::load(path) {
            Ok(records) => *cache = Some(records),
            Err(e) => {
                eprintln!("error: {}", e);
                std::process::exit(2);
            }
        }
    }
    let records = cache.as_ref().map(|r| r.as_slice()).unwrap_or(&[]);
    match coflow_bench::ledger::select(records, spec) {
        Ok(rec) => DiffSide::from_record(rec, spec),
        Err(e) => {
            eprintln!("error: {}: {}", path, e);
            std::process::exit(2);
        }
    }
}

fn diff_cmd(
    extras: &[String],
    tolerance_flag: Option<f64>,
    ledger: &Option<String>,
    out: Option<&str>,
) {
    use coflow_bench::diff::{diff_sides, render_diff_json, render_diff_table, DEFAULT_TOLERANCE};
    let tolerance = tolerance_flag.unwrap_or(DEFAULT_TOLERANCE);
    let a_spec = extras.first().map(String::as_str).unwrap_or("prev");
    let b_spec = extras.get(1).map(String::as_str).unwrap_or("latest");
    let mut cache = None;
    let a = diff_side(a_spec, ledger, &mut cache);
    let b = diff_side(b_spec, ledger, &mut cache);
    let report = diff_sides(&a, &b, tolerance);
    print!("{}", render_diff_table(&report));
    if let Some(out) = out {
        write_report(out, "diff report", &render_diff_json(&report, &a.schema, &b.schema));
        println!("# diff report written to {}", out);
    }
    if !report.regressions().is_empty() {
        std::process::exit(1);
    }
}

fn report_cmd(ledger: &Option<String>, out: Option<&str>) {
    let Some(path) = ledger else {
        eprintln!("error: report needs a ledger (--ledger PATH)");
        std::process::exit(2);
    };
    let records = match obs::ledger::load(path) {
        Ok(r) if !r.is_empty() => r,
        Ok(_) => {
            eprintln!("error: ledger {} holds no records yet", path);
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: {}", e);
            std::process::exit(1);
        }
    };
    let title = format!("Coflow run ledger — {}", path);
    let html = coflow_bench::dash::render_dash(&records, &title);
    let out = out.unwrap_or("dash.html");
    if let Err(e) = obs::atomic_write(out, &html) {
        eprintln!("error: {}", e);
        std::process::exit(1);
    }
    println!(
        "# dashboard over {} ledger records written to {}",
        records.len(),
        out
    );
}

fn verdict_cmd(
    gate: Option<&str>,
    status: Option<&str>,
    mut kvs: Vec<(String, String)>,
    note: &str,
    ledger: &Option<String>,
) {
    let Some(gate) = gate else {
        eprintln!("error: verdict needs --gate NAME");
        std::process::exit(2);
    };
    if let Some(status) = status {
        if status != "pass" && status != "fail" {
            eprintln!("error: --status must be pass or fail, got '{}'", status);
            std::process::exit(2);
        }
        kvs.push(("status".to_string(), status.to_string()));
    }
    if kvs.is_empty() {
        eprintln!("error: verdict needs --status or at least one --verdict K=V");
        std::process::exit(2);
    }
    append_ledger(ledger, coflow_bench::ledger::verdict_record(gate, kvs, note));
}

/// Writes a report via the shared atomic write-then-rename sink (which
/// also drops a `source:"report"` breadcrumb on the telemetry stream when
/// one is installed); a concurrent reader (or a SIGINT mid-write) never
/// sees a torn file.
fn write_report(path: &str, what: &str, contents: &str) {
    if let Err(e) = coflow_bench::sink::write_json_report(path, what, contents) {
        eprintln!("error: writing {}: {}", path, e);
        std::process::exit(1);
    }
}

/// Exits 130 (the conventional SIGINT code) if an interrupt arrived,
/// after the caller has flushed its partial report.
fn exit_if_interrupted(partial: &str) {
    if obs::interrupted() {
        eprintln!("interrupted: partial {} written; exiting", partial);
        std::process::exit(obs::SIGINT_EXIT_CODE);
    }
}

/// Reads a committed baseline-style file, failing with the file name and
/// the exact command that regenerates it when the file is missing, empty,
/// or truncated.
fn read_baseline_file(path: &str, what: &str, regen: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(s) if s.trim_start().starts_with('{') && s.trim_end().ends_with('}') => s,
        Ok(_) => {
            eprintln!(
                "error: {} '{}' is empty or truncated (not a complete JSON document).\n\
                 Regenerate it with:\n    {}",
                what, path, regen
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!(
                "error: cannot read {} '{}': {}.\n\
                 Regenerate it with:\n    {}",
                what, path, e, regen
            );
            std::process::exit(1);
        }
    }
}

fn chaos(seed: u64, args: &ChaosArgs) {
    use coflow_bench::chaos::{
        render_chaos, render_chaos_json, run_chaos, validate_chaos_json, worst_window_search,
        ChaosConfig, ChaosReport,
    };

    // Validation-only mode: check an existing report and exit.
    if let Some(path) = &args.validate {
        let regen = format!(
            "cargo run --release -p coflow-bench --bin experiments -- chaos --out {}",
            path
        );
        let text = read_baseline_file(path, "chaos report", &regen);
        match validate_chaos_json(&text) {
            Ok(summary) => {
                println!("{}: {}", path, summary);
                return;
            }
            Err(e) => {
                eprintln!("error: {}: {}", path, e);
                std::process::exit(1);
            }
        }
    }

    let cfg = paper_scale_config(seed);
    trace_banner(&cfg);
    let inst = assign_weights(
        &generate_trace(&cfg),
        WeightScheme::RandomPermutation { seed },
    );
    let config = ChaosConfig {
        kills: args.kills,
        seed,
        fault_rate: args.fault_rate,
    };
    let mut report = run_chaos(&inst, &config);
    if obs::interrupted() {
        write_report(&args.out, "chaos report (partial)", &render_chaos_json(&report));
        exit_if_interrupted(&args.out);
    }
    if args.windows > 0 {
        let windows = worst_window_search(&inst, 2, 8, args.windows, seed);
        report = ChaosReport {
            windows: Some(windows),
            ..report
        };
    }
    print!("{}", render_chaos(&report));
    let rendered = render_chaos_json(&report);
    write_report(&args.out, "chaos report", &rendered);
    println!("# chaos report written to {}", args.out);
    exit_if_interrupted(&args.out);
    // Close the loop: the report must satisfy its own validator.
    match validate_chaos_json(&rendered) {
        Ok(summary) => println!("# {}", summary),
        Err(e) => {
            eprintln!("error: fresh chaos report failed validation: {}", e);
            std::process::exit(1);
        }
    }
}

fn profile(
    seed: u64,
    args: &ProfileArgs,
    ledger: &Option<String>,
    started: std::time::Instant,
) {
    use coflow_bench::profile::{
        compare_mem, compare_reports, render_json, render_mem_json, render_profile, run_profile,
    };

    let cfg = if args.full {
        // The paper's 150-rack cluster; solver budgets keep the H_LP cells
        // bounded (falling back would abort the profile, so the budgets are
        // generous).
        TraceConfig {
            ports: 150,
            num_coflows: 100,
            seed,
            flow_size_mu: 1.9,
            flow_size_sigma: 1.1,
            max_flow_size: 512,
            coflow_scale_sigma: 1.8,
            fanout_alpha: 0.7,
            ..TraceConfig::default()
        }
    } else {
        paper_scale_config(seed)
    };
    trace_banner(&cfg);
    let inst = assign_weights(
        &generate_trace(&cfg),
        WeightScheme::RandomPermutation { seed },
    );
    let lp_opts = SimplexOptions {
        max_iterations: 400_000,
        time_limit_ms: Some(120_000),
        stall_window: Some(40_000),
        ..SimplexOptions::default()
    };
    let report = run_profile(&inst, seed, &lp_opts, args.sequential);
    print!("{}", render_profile(&report));

    if let Some(trace_path) = &args.trace {
        // The registry still holds the last cell's events.
        if let Err(e) = obs::write_chrome_trace(trace_path) {
            eprintln!("error: writing chrome trace: {}", e);
            std::process::exit(1);
        }
        println!("# chrome trace (last cell) written to {}", trace_path);
    }

    let rendered = render_json(&report);
    write_report(&args.out, "profile grid report", &rendered);
    println!("# per-stage report written to {}", args.out);

    // Gate outcomes accumulate here; the run record carries them and the
    // process exits nonzero after the ledger append (a failed gate must
    // still leave its record behind for `diff`/`report` to explain).
    let mut gate_entries: Vec<(String, String)> = Vec::new();
    let mut gate_failed = false;

    if let Some(baseline_path) = &args.baseline {
        let regen = "scripts/bench-baseline.sh --update".to_string();
        let baseline = read_baseline_file(baseline_path, "profile baseline", &regen);
        let deltas = match compare_reports(&baseline, &rendered, args.tolerance) {
            Ok(d) => d,
            Err(e) => {
                eprintln!(
                    "error: comparing against baseline {}: {}.\nRegenerate it with:\n    {}",
                    baseline_path, e, regen
                );
                std::process::exit(1);
            }
        };
        let mut regressed = false;
        println!(
            "# baseline comparison vs {} (tolerance +{:.0}%):",
            baseline_path,
            args.tolerance * 100.0
        );
        for d in &deltas {
            println!(
                "#   {:<10} {:>10.2} ms -> {:>10.2} ms  {}",
                d.stage,
                d.baseline_ms,
                d.current_ms,
                if d.regressed { "REGRESSED" } else { "ok" }
            );
            regressed |= d.regressed;
        }
        gate_entries.push((
            "perf-baseline".to_string(),
            if regressed { "fail" } else { "pass" }.to_string(),
        ));
        if regressed {
            eprintln!("error: per-stage regression beyond tolerance");
            gate_failed = true;
        }
    }

    if let Some(mem_out) = &args.mem_out {
        write_report(mem_out, "memory report", &render_mem_json(&report));
        println!("# memory report written to {}", mem_out);
    }

    if let Some(mem_baseline_path) = &args.mem_baseline {
        let regen = format!(
            "cargo run --release -p coflow-bench --bin experiments -- profile --mem-out {}",
            mem_baseline_path
        );
        let baseline = read_baseline_file(mem_baseline_path, "memory baseline", &regen);
        let current = render_mem_json(&report);
        let deltas = match compare_mem(&baseline, &current, args.mem_tolerance) {
            Ok(d) => d,
            Err(e) => {
                eprintln!(
                    "error: comparing against memory baseline {}: {}.\nRegenerate it with:\n    {}",
                    mem_baseline_path, e, regen
                );
                std::process::exit(1);
            }
        };
        let mut regressed = false;
        println!(
            "# memory comparison vs {} (tolerance +{:.0}%):",
            mem_baseline_path,
            args.mem_tolerance * 100.0
        );
        for d in &deltas {
            println!(
                "#   {:<24} {:>14.0} -> {:>14.0}  {}",
                d.metric,
                d.baseline,
                d.current,
                if d.regressed { "REGRESSED" } else { "ok" }
            );
            regressed |= d.regressed;
        }
        gate_entries.push((
            "mem-baseline".to_string(),
            if regressed { "fail" } else { "pass" }.to_string(),
        ));
        if regressed {
            eprintln!("error: memory regression beyond tolerance");
            gate_failed = true;
        }
    }

    let mut rec = coflow_bench::ledger::record_from_profile(
        &report,
        started.elapsed().as_secs_f64() * 1000.0,
    );
    rec.verdicts = gate_entries;
    append_ledger(ledger, rec);
    if gate_failed {
        std::process::exit(1);
    }
}

fn explain(seed: u64, args: &ExplainArgs) {
    use coflow_bench::explain::{
        render_json, render_text, run_explain, validate_report, ValidateOpts,
    };

    // Validation-only mode: check an existing report and exit.
    if let Some(path) = &args.validate {
        let text = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: reading {}: {}", path, e);
                std::process::exit(1);
            }
        };
        let opts = ValidateOpts { expect_starvation: args.expect_starvation };
        match validate_report(&text, &opts) {
            Ok(summary) => {
                println!("{}: {}", path, summary);
                return;
            }
            Err(e) => {
                eprintln!("error: {}: {}", path, e);
                std::process::exit(1);
            }
        }
    }

    let cfg = paper_scale_config(seed);
    trace_banner(&cfg);
    let inst = assign_weights(
        &generate_trace(&cfg),
        WeightScheme::RandomPermutation { seed },
    );
    let lp_opts = SimplexOptions {
        max_iterations: 400_000,
        time_limit_ms: Some(120_000),
        stall_window: Some(40_000),
        ..SimplexOptions::default()
    };
    obs::reset();
    obs::set_enabled(true);
    let report = run_explain(
        &inst,
        seed,
        &lp_opts,
        args.faults,
        &coflow::DiagnosticsConfig::default(),
    );
    obs::set_enabled(false);
    print!("{}", render_text(&report));

    write_report(&args.out, "diagnostics report", &render_json(&report));
    println!("# diagnostics report written to {}", args.out);

    if let Some(svg_path) = &args.svg {
        // Re-run the attribution cell to materialize its trace for the
        // heatmap (run_with_order is cheap next to the LP).
        let att = report.attribution_cell();
        let order = att.diag.committed_order.clone();
        let outcome =
            coflow::sched::run_with_order(&inst, order, att.grouping, att.backfill);
        let svg = coflow_netsim::render_svg_heatmap(&outcome.trace, 128);
        write_report(svg_path, "port-utilization heatmap", &svg);
        println!("# port-utilization heatmap written to {}", svg_path);
    }

    if let Some(trace_path) = &args.trace {
        if let Err(e) = obs::write_chrome_trace(trace_path) {
            eprintln!("error: writing chrome trace: {}", e);
            std::process::exit(1);
        }
        println!("# chrome trace (spans + anomaly instants) written to {}", trace_path);
    }

    // Gate: fail on firings at or above the requested severity. Fault
    // sections are expected to fire; the clean grid is not.
    let mut firings = 0usize;
    for cell in &report.cells {
        firings += cell.diag.anomalies_at_least(args.severity).count();
    }
    let fault_firings = report
        .faults
        .as_ref()
        .map(|f| f.diag.anomalies_at_least(args.severity).count())
        .unwrap_or(0);
    if args.expect_starvation {
        let starved = report
            .faults
            .as_ref()
            .map(|f| {
                f.diag
                    .anomalies
                    .iter()
                    .any(|a| a.detector == coflow::Detector::Starvation)
            })
            .unwrap_or(false);
        if !starved {
            eprintln!("error: expected a starvation firing under faults, found none");
            std::process::exit(1);
        }
        println!(
            "# faults section fired {} anomalies at >= {} (expected)",
            fault_firings,
            args.severity.name()
        );
    } else {
        firings += fault_firings;
    }
    if firings > 0 {
        eprintln!(
            "error: {} anomalies at or above severity '{}'",
            firings,
            args.severity.name()
        );
        std::process::exit(1);
    }
}

fn trace_banner(cfg: &TraceConfig) {
    println!(
        "# synthetic trace: {} ports, {} coflows, seed {}",
        cfg.ports, cfg.num_coflows, cfg.seed
    );
}

/// The experiment filters are scaled with the fabric: the paper filters a
/// 150-port trace at `M0 ≥ 30/40/50`; at 60 ports the same fraction of the
/// fabric corresponds to roughly 12/16/20.
fn scaled_filters(ports: usize) -> [usize; 3] {
    let scale = ports as f64 / 150.0;
    [
        (50.0 * scale).round() as usize,
        (40.0 * scale).round() as usize,
        (30.0 * scale).round() as usize,
    ]
}

fn table1(seed: u64) {
    let cfg = paper_scale_config(seed);
    trace_banner(&cfg);
    let trace = generate_trace(&cfg);
    println!("== Table 1: normalized total weighted completion times ==");
    let filters = scaled_filters(cfg.ports);
    println!(
        "(width filters scaled to the {}-port fabric: {:?})",
        cfg.ports, filters
    );
    for &filter in &filters {
        for scheme in [
            WeightScheme::Equal,
            WeightScheme::RandomPermutation { seed },
        ] {
            let block = coflow_bench::table1::run_block(&trace, filter, scheme);
            println!("{}", render_table1_block(&block));
        }
    }
}

fn fig2a(seed: u64) {
    let cfg = paper_scale_config(seed);
    trace_banner(&cfg);
    let trace = generate_trace(&cfg);
    let filter = scaled_filters(cfg.ports)[0];
    println!("{}", render_fig2a(&run_fig2a(&trace, filter, seed)));
}

fn fig2b(seed: u64) {
    let cfg = paper_scale_config(seed);
    trace_banner(&cfg);
    let trace = generate_trace(&cfg);
    let filter = scaled_filters(cfg.ports)[0];
    println!("{}", render_fig2b(&run_fig2b(&trace, filter, seed)));
}

fn lpexp(seed: u64) {
    // LP-EXP is exponential in the horizon: run at reduced scale.
    let cfg = TraceConfig {
        ports: 10,
        num_coflows: 12,
        seed,
        flow_size_mu: 0.9,
        flow_size_sigma: 0.7,
        max_flow_size: 8,
        ..TraceConfig::default()
    };
    trace_banner(&cfg);
    let inst = assign_weights(
        &generate_trace(&cfg),
        WeightScheme::RandomPermutation { seed },
    );
    println!("{}", render_lowerbound(&run_lowerbound(&inst)));
}

fn ratios(seed: u64) {
    println!("{}", render_ratios(&run_ratios(24, seed)));
}

fn gridsweep(seed: u64) {
    // Small instance: the sweep also solves (LP-EXP) as the limit.
    let cfg = TraceConfig {
        ports: 10,
        num_coflows: 12,
        seed,
        flow_size_mu: 0.9,
        flow_size_sigma: 0.7,
        max_flow_size: 8,
        ..TraceConfig::default()
    };
    trace_banner(&cfg);
    let inst = assign_weights(
        &generate_trace(&cfg),
        WeightScheme::RandomPermutation { seed },
    );
    let sweep = coflow_bench::gridsweep::run_gridsweep(&inst, &[4.0, 2.0, 1.5, 1.25, 1.1]);
    println!("{}", coflow_bench::gridsweep::render_gridsweep(&sweep));
}

fn integrality(seed: u64) {
    let cfg = TraceConfig {
        ports: 24,
        num_coflows: 40,
        seed,
        max_flow_size: 128,
        ..TraceConfig::default()
    };
    trace_banner(&cfg);
    let inst = assign_weights(
        &generate_trace(&cfg),
        WeightScheme::RandomPermutation { seed },
    );
    let report = coflow_bench::integrality::run_integrality(&inst);
    println!("{}", coflow_bench::integrality::render_integrality(&report));
}

fn faults(seed: u64, policies: Option<&str>) {
    // Full 150-port fabric (the paper's cluster size): presolve keeps the
    // interval LP tractable, and the solver budgets below turn any
    // numerical trouble into recorded fallback-tier degradation instead of
    // a panic.
    let cfg = TraceConfig {
        ports: 150,
        num_coflows: 100,
        seed,
        flow_size_mu: 1.9,
        flow_size_sigma: 1.1,
        max_flow_size: 512,
        coflow_scale_sigma: 1.8,
        fanout_alpha: 0.7,
        ..TraceConfig::default()
    };
    trace_banner(&cfg);
    let inst = assign_weights(
        &generate_trace(&cfg),
        WeightScheme::RandomPermutation { seed },
    );
    let lp_opts = SimplexOptions {
        max_iterations: 200_000,
        time_limit_ms: Some(30_000),
        stall_window: Some(20_000),
        ..SimplexOptions::default()
    };
    let rates = [0.0, 0.02, 0.05, 0.1, 0.2];
    let report = run_faults(&inst, &rates, seed, &lp_opts);
    print!("{}", render_faults(&report));
    exit_if_interrupted("fault-sweep table (printed above)");
    // The engine-only policies under the same seeded plans — the default
    // online/online-stale/greedy trio, or any fault-capable registry
    // selection via --policies (with `all` = every fault-capable canonical
    // policy; the open-loop BvN batch planner sits this table out).
    let report = match policies {
        Some(spec) => {
            let names: Vec<String> = if spec == "all" {
                coflow::PolicyRegistry::builtin()
                    .canonical()
                    .into_iter()
                    .filter(|e| e.caps.supports_faults)
                    .map(|e| e.name.to_string())
                    .collect()
            } else {
                spec.split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            };
            match run_fault_policies_selected(&inst, &rates, seed, &names) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: --policies {}: {}", spec, e);
                    std::process::exit(2);
                }
            }
        }
        None => run_fault_policies(&inst, &rates, seed),
    };
    print!("{}", render_fault_policies(&report));
    exit_if_interrupted("fault-policy table (printed above)");
}

/// Parses a comma-separated list of positive integers (`--ports 100,1000`).
fn parse_usize_list(value: &str, flag: &str) -> Vec<usize> {
    let parsed: Option<Vec<usize>> = value
        .split(',')
        .map(|s| s.trim().parse::<usize>().ok().filter(|&v| v > 0))
        .collect();
    match parsed {
        Some(list) if !list.is_empty() => list,
        _ => {
            eprintln!(
                "error: {} needs a comma-separated list of positive integers, got '{}'",
                flag, value
            );
            std::process::exit(2);
        }
    }
}

fn scale(seed: u64, args: &ScaleArgs, ledger: &Option<String>, started: std::time::Instant) {
    use coflow_bench::scale::{
        compare_scale, render_scale, render_scale_json, run_scale, DEFAULT_CELLS,
    };

    // Resolve the swept cells: an explicit --cell wins; --ports/--coflows
    // build the cross product; otherwise the committed default curve.
    let cells: Vec<(usize, usize)> = if let Some(cell) = args.cell {
        vec![cell]
    } else if args.ports.is_some() || args.coflows.is_some() {
        let default_ports: Vec<usize> = DEFAULT_CELLS.iter().map(|&(p, _)| p).collect();
        let default_coflows: Vec<usize> = DEFAULT_CELLS.iter().map(|&(_, c)| c).collect();
        let ports = args.ports.as_deref().unwrap_or(&default_ports);
        let coflows = args.coflows.as_deref().unwrap_or(&default_coflows);
        let mut cells = Vec::new();
        for &p in ports {
            for &c in coflows {
                if !cells.contains(&(p, c)) {
                    cells.push((p, c));
                }
            }
        }
        cells
    } else {
        DEFAULT_CELLS.to_vec()
    };

    // Read the baseline before the sweep so a missing file fails fast.
    let baseline = args.check.as_ref().map(|check| {
        let regen = format!(
            "cargo run --release -p coflow-bench --bin experiments -- scale --out {}",
            check
        );
        read_baseline_file(check, "scale baseline", &regen)
    });

    println!(
        "# scale sweep: {} cells, window {}, seed {}",
        cells.len(),
        args.window,
        seed
    );
    let report = run_scale(&cells, seed, args.window);
    print!("{}", render_scale(&report));
    let rendered = render_scale_json(&report);

    // A gate run (--check without --out) must not clobber the committed
    // baseline with its single-cell subset.
    let write_out = args.check.is_none() || out_flag_differs(&args.out, args.check.as_deref());
    if write_out {
        write_report(&args.out, "scale report", &rendered);
        println!("# scale report written to {}", args.out);
    }
    exit_if_interrupted(&args.out);

    let mut rec = coflow_bench::ledger::record_from_scale(
        &report,
        started.elapsed().as_secs_f64() * 1000.0,
    );
    let mut gate_failed = false;
    if let Some(baseline) = baseline {
        let check = args.check.as_deref().unwrap_or_default();
        match compare_scale(&baseline, &rendered, args.wall_tolerance, args.alloc_tolerance) {
            Ok(deltas) => {
                let mut regressed = false;
                println!(
                    "# scale comparison vs {} (wall +{:.0}%, alloc +{:.0}%):",
                    check,
                    args.wall_tolerance * 100.0,
                    args.alloc_tolerance * 100.0
                );
                for d in &deltas {
                    println!(
                        "#   {:<18} {:<12} {:>16.2} -> {:>16.2}  {}",
                        d.cell,
                        d.metric,
                        d.baseline,
                        d.current,
                        if d.regressed { "REGRESSED" } else { "ok" }
                    );
                    regressed |= d.regressed;
                }
                rec.verdicts.push((
                    "scale-baseline".to_string(),
                    if regressed { "fail" } else { "pass" }.to_string(),
                ));
                if regressed {
                    eprintln!("error: scale regression beyond tolerance");
                    gate_failed = true;
                }
            }
            Err(e) => {
                eprintln!("error: comparing against scale baseline {}: {}", check, e);
                rec.verdicts.push(("scale-baseline".to_string(), "fail".to_string()));
                gate_failed = true;
            }
        }
    }
    append_ledger(ledger, rec);
    if gate_failed {
        std::process::exit(1);
    }
}

/// True when `--out` was explicitly pointed away from the checked
/// baseline (the default out path is suppressed under `--check`).
fn out_flag_differs(out: &str, check: Option<&str>) -> bool {
    match check {
        Some(check) => out != "BENCH_scale.json" && out != check,
        None => true,
    }
}

fn pin(seed: u64, args: &PinArgs, ledger: &Option<String>, started: std::time::Instant) {
    use coflow_bench::pins::{collect_pins, compare_pins, parse_pins, render_pins, render_pins_json};

    // Read and parse the committed pin file *before* the expensive pin
    // collection, so a missing/truncated file fails in milliseconds with
    // the regeneration command instead of after a full grid run.
    let checked = args.check.as_ref().map(|check| {
        let regen = format!(
            "cargo run --release -p coflow-bench --bin experiments -- pin --out {}",
            check
        );
        let text = read_baseline_file(check, "pin file", &regen);
        match parse_pins(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!(
                    "error: {}: {}.\nRegenerate it with:\n    {}",
                    check, e, regen
                );
                std::process::exit(1);
            }
        }
    });

    let report = collect_pins(seed);
    print!("{}", render_pins(&report));

    if let Some(out) = &args.out {
        write_report(out, "pin file", &render_pins_json(&report));
        println!("# pin file written to {}", out);
    }

    let mut rec = coflow_bench::ledger::record_from_pins(
        &report,
        started.elapsed().as_secs_f64() * 1000.0,
    );
    let mut gate_failed = false;
    if let Some(check) = &args.check {
        let baseline = match checked {
            Some(b) => b,
            None => unreachable!(),
        };
        let status = match compare_pins(&baseline, &report, args.tolerance) {
            Ok(summary) => {
                println!("# {}: {}", check, summary);
                "pass"
            }
            Err(e) => {
                eprintln!("error: pin gate failed vs {}: {}", check, e);
                gate_failed = true;
                "fail"
            }
        };
        rec.verdicts.push(("pin-check".to_string(), status.to_string()));
    }
    append_ledger(ledger, rec);
    if gate_failed {
        std::process::exit(1);
    }
}

fn tournament(
    seed: u64,
    args: &TournamentArgs,
    ledger: &Option<String>,
    started: std::time::Instant,
) {
    use coflow_bench::tournament::{
        compare_tournament, render_tournament, render_tournament_json, run_tournament,
        validate_tournament_json,
    };

    // Read the committed golden *before* the runs so a missing/truncated
    // file fails in milliseconds with the regeneration command.
    let baseline = args.check.as_ref().map(|check| {
        let regen = format!(
            "cargo run --release -p coflow-bench --bin experiments -- tournament --out {}",
            check
        );
        read_baseline_file(check, "tournament golden", &regen)
    });

    let inst = coflow_bench::arrivals::arrivals_instance(24, 36, seed);
    println!(
        "# tournament: 24 ports, 36 coflows, selection '{}', seed {}",
        args.policies, seed
    );
    let report = match run_tournament(&inst, seed, &args.policies) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {}", e);
            std::process::exit(2);
        }
    };
    print!("{}", render_tournament(&report));
    let rendered = render_tournament_json(&report);

    // A gate run (--check without an explicit --out elsewhere) must not
    // clobber the committed golden.
    let write_out = args.check.is_none()
        || (args.out != "BENCH_tournament.json"
            && Some(args.out.as_str()) != args.check.as_deref());
    if write_out {
        write_report(&args.out, "tournament report", &rendered);
        println!("# tournament report written to {}", args.out);
    }
    exit_if_interrupted(&args.out);

    let mut gate_entries: Vec<(String, String)> = Vec::new();
    let mut gate_failed = false;

    // Close the loop: the fresh report must satisfy its own validator —
    // every ratio >= 1 and within the policy's proven bound, canonical
    // registry coverage, fault-round consistency.
    match validate_tournament_json(&rendered) {
        Ok(summary) => {
            println!("# {}", summary);
            gate_entries.push(("tournament-validate".to_string(), "pass".to_string()));
        }
        Err(e) => {
            eprintln!("error: fresh tournament report failed validation: {}", e);
            gate_entries.push(("tournament-validate".to_string(), "fail".to_string()));
            gate_failed = true;
        }
    }

    if let Some(baseline) = baseline {
        let check = args.check.as_deref().unwrap_or_default();
        match compare_tournament(&baseline, &rendered, args.tolerance) {
            Ok(deltas) => {
                let mut regressed = false;
                println!(
                    "# tournament comparison vs {} (objectives bit-exact, wall +{:.0}%):",
                    check,
                    args.tolerance * 100.0
                );
                for d in &deltas {
                    println!(
                        "#   {:<5} {:<16} {:<15} {:>14.3} -> {:>14.3}  {}",
                        d.section,
                        d.policy,
                        d.metric,
                        d.baseline,
                        d.current,
                        if d.regressed { "REGRESSED" } else { "ok" }
                    );
                    regressed |= d.regressed;
                }
                gate_entries.push((
                    "tournament-golden".to_string(),
                    if regressed { "fail" } else { "pass" }.to_string(),
                ));
                if regressed {
                    eprintln!("error: tournament regression vs the committed golden");
                    gate_failed = true;
                }
            }
            Err(e) => {
                eprintln!("error: comparing against tournament golden {}: {}", check, e);
                gate_entries.push(("tournament-golden".to_string(), "fail".to_string()));
                gate_failed = true;
            }
        }
    }

    let mut rec = coflow_bench::ledger::record_from_tournament(
        &report,
        started.elapsed().as_secs_f64() * 1000.0,
    );
    rec.verdicts = gate_entries;
    append_ledger(ledger, rec);
    if gate_failed {
        std::process::exit(1);
    }
}

fn arrivals(seed: u64) {
    let inst = coflow_bench::arrivals::arrivals_instance(24, 36, seed);
    println!(
        "# arrivals trace: 24 ports, 36 coflows, Poisson arrivals, seed {}",
        seed
    );
    let report = coflow_bench::arrivals::run_arrivals(&inst);
    println!("{}", coflow_bench::arrivals::render_arrivals(&report));
}
