//! The §4.2 near-optimality certificate: compare the best heuristic cost to
//! the (LP-EXP) time-indexed lower bound.
//!
//! The paper reports `LP-EXP lower bound / cost(H_LP, case d) ≈ 0.9447` for
//! the `M0 ≥ 50`, random-weights configuration — i.e. the heuristics are
//! within ~6% of optimal. LP-EXP is exponential in the horizon, so this
//! experiment runs on a reduced-scale instance (the paper itself solved it
//! for only one configuration for the same reason).

use coflow::bounds::{interval_lp_bound, release_load_bound};
use coflow::ordering::{compute_order, OrderRule};
use coflow::relax::solve_time_indexed_lp;
use coflow::sched::greedy::run_greedy;
use coflow::sched::{run, run_with_order_ext, AlgorithmSpec};
use coflow::Instance;

/// The lower-bound experiment's results.
#[derive(Clone, Debug)]
pub struct LowerBoundReport {
    /// Cost of (H_LP, case d).
    pub hlp_cost: f64,
    /// Cost of (H_ρ, case d).
    pub hrho_cost: f64,
    /// Time-indexed LP-EXP lower bound.
    pub lp_exp_bound: f64,
    /// Interval-indexed LP lower bound (weaker, cheap).
    pub interval_bound: f64,
    /// Trivial `Σ w (r + ρ)` bound (weakest).
    pub load_bound: f64,
    /// `lp_exp_bound / hlp_cost`: the paper's 0.9447-style ratio.
    pub ratio_hlp: f64,
    /// `lp_exp_bound / hrho_cost`.
    pub ratio_hrho: f64,
    /// Cost of the work-conserving rematch extension (H_LP order).
    pub rematch_cost: f64,
    /// `lp_exp_bound / rematch_cost`.
    pub ratio_rematch: f64,
    /// Cost of the priority-greedy baseline (H_LP order).
    pub greedy_cost: f64,
    /// `lp_exp_bound / greedy_cost` — an upper estimate of how tight the
    /// LP-EXP bound itself is.
    pub ratio_greedy: f64,
}

/// Runs the lower-bound experiment on `instance` (keep it small: LP-EXP has
/// `Θ(n · T)` variables).
pub fn run_lowerbound(instance: &Instance) -> LowerBoundReport {
    let hlp = run(
        instance,
        &AlgorithmSpec {
            order: OrderRule::LpBased,
            grouping: true,
            backfill: true,
        },
    );
    let hrho = run(
        instance,
        &AlgorithmSpec {
            order: OrderRule::LoadOverWeight,
            grouping: true,
            backfill: true,
        },
    );
    let order = compute_order(instance, OrderRule::LpBased);
    let rematch = run_with_order_ext(instance, order.clone(), true, true, true);
    let greedy = run_greedy(instance, order);
    let lp_exp = solve_time_indexed_lp(instance);
    let interval = interval_lp_bound(instance);
    let load = release_load_bound(instance);
    LowerBoundReport {
        hlp_cost: hlp.objective,
        hrho_cost: hrho.objective,
        lp_exp_bound: lp_exp.lower_bound,
        interval_bound: interval,
        load_bound: load,
        ratio_hlp: lp_exp.lower_bound / hlp.objective,
        ratio_hrho: lp_exp.lower_bound / hrho.objective,
        rematch_cost: rematch.objective,
        ratio_rematch: lp_exp.lower_bound / rematch.objective,
        greedy_cost: greedy.objective,
        ratio_greedy: lp_exp.lower_bound / greedy.objective,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coflow_workloads::{assign_weights, generate_trace, TraceConfig, WeightScheme};

    #[test]
    fn bounds_are_consistent_on_a_small_trace() {
        let cfg = TraceConfig {
            ports: 8,
            num_coflows: 8,
            max_flow_size: 6,
            flow_size_mu: 0.8,
            flow_size_sigma: 0.6,
            ..TraceConfig::small(12)
        };
        let inst = assign_weights(
            &generate_trace(&cfg),
            WeightScheme::RandomPermutation { seed: 3 },
        );
        let report = run_lowerbound(&inst);
        // Sound lower bounds: no bound exceeds the achieved cost.
        assert!(report.lp_exp_bound <= report.hlp_cost + 1e-6);
        assert!(report.interval_bound <= report.lp_exp_bound + 1e-6);
        // Ratio in (0, 1].
        assert!(report.ratio_hlp > 0.0 && report.ratio_hlp <= 1.0 + 1e-9);
        // The heuristic should be meaningfully close to optimal (paper:
        // ~0.94; we allow a generous floor for the tiny instance).
        assert!(
            report.ratio_hlp > 0.5,
            "H_LP unexpectedly far from the bound: {}",
            report.ratio_hlp
        );
    }
}
