//! Fault-injection experiment: TWCT inflation vs fault rate.
//!
//! Runs the fault-tolerant pipeline (`H_LP`, case (d): grouping +
//! backfilling) against seeded [`FaultPlan`]s of increasing intensity and
//! reports, per rate: how often planning degraded below `H_LP` and by how
//! much the total weighted completion time inflated over the fault-free
//! schedule. The objective comparison is restricted to the coflows that
//! survive (are not cancelled by) each plan, so cancellations do not
//! masquerade as speedups.

use coflow::sched::recovery::{run_with_faults_strict, verify_faulty_outcome};
use coflow::sched::resilient::{fallback_chain, run_resilient};
use coflow::{AlgorithmSpec, Instance, OrderRule};
use coflow_lp::SimplexOptions;
use coflow_netsim::FaultPlan;

/// One fault-rate measurement.
#[derive(Clone, Debug)]
pub struct FaultCell {
    /// Fault rate fed to [`FaultPlan::generate`].
    pub rate: f64,
    /// Injected events at this rate.
    pub events: usize,
    /// Coflows cancelled by the plan before completing.
    pub cancelled: usize,
    /// Planning epochs (1 = never replanned).
    pub replans: usize,
    /// Planned units stranded by outages/degradations.
    pub blocked_units: u64,
    /// Epoch count per fallback tier: `[H_LP, H_ρ, H_A]` for the grid's
    /// LP-backed chain.
    pub tier_counts: Vec<usize>,
    /// `Σ w_k C_k` over surviving coflows, under faults.
    pub objective: f64,
    /// `Σ w_k C_k` over the *same* surviving coflows, fault-free.
    pub baseline_objective: f64,
    /// `objective / baseline_objective` (1.0 when faults cost nothing).
    pub inflation: f64,
}

/// The full experiment: one cell per fault rate.
#[derive(Clone, Debug)]
pub struct FaultReport {
    /// The algorithm under test.
    pub spec: AlgorithmSpec,
    /// Plan seed.
    pub seed: u64,
    /// Fault-free TWCT over all coflows (the reference point).
    pub fault_free_objective: f64,
    /// Per-rate results.
    pub cells: Vec<FaultCell>,
}

/// Runs the fault sweep on `instance` with `H_LP` case (d) under
/// `lp_opts`. `rates` are fault probabilities per port/coflow (see
/// [`FaultPlan::generate`]); each rate gets its own deterministic plan
/// derived from `seed`.
pub fn run_faults(
    instance: &Instance,
    rates: &[f64],
    seed: u64,
    lp_opts: &SimplexOptions,
) -> FaultReport {
    let spec = AlgorithmSpec {
        order: OrderRule::LpBased,
        grouping: true,
        backfill: true,
    };
    let chain_len = fallback_chain(spec.order).len();

    // Fault-free reference run (same solver budgets, so inflation measures
    // the faults, not the budget).
    let baseline = run_resilient(instance, &spec, lp_opts);
    let horizon = baseline.outcome.makespan().max(1);
    let fault_free_objective = baseline.outcome.objective;

    let cells = rates
        .iter()
        .enumerate()
        .map(|(i, &rate)| {
            let plan = FaultPlan::generate(
                instance.ports(),
                instance.len(),
                horizon,
                rate,
                seed.wrapping_add(i as u64),
            );
            let out = run_with_faults_strict(instance, &spec, lp_opts, &plan);
            if let Err(e) = verify_faulty_outcome(instance, &plan, &out) {
                panic!("rate {}: invalid fault-tolerant schedule: {}", rate, e);
            }
            let mut tier_counts = vec![0usize; chain_len];
            for &t in &out.tiers {
                tier_counts[t] += 1;
            }
            let cancelled = out.completions.iter().filter(|c| c.is_none()).count();
            // Baseline objective over the surviving set only.
            let baseline_objective: f64 = out
                .completions
                .iter()
                .enumerate()
                .filter(|(_, c)| c.is_some())
                .map(|(k, _)| {
                    instance.coflow(k).weight * baseline.outcome.completions[k] as f64
                })
                .sum();
            let inflation = if baseline_objective > 0.0 {
                out.objective / baseline_objective
            } else {
                1.0
            };
            FaultCell {
                rate,
                events: plan.events.len(),
                cancelled,
                replans: out.replans,
                blocked_units: out.blocked_units,
                tier_counts,
                objective: out.objective,
                baseline_objective,
                inflation,
            }
        })
        .collect();

    FaultReport {
        spec,
        seed,
        fault_free_objective,
        cells,
    }
}

/// Renders the sweep as a plain-text table.
pub fn render_faults(report: &FaultReport) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "== Fault injection: TWCT inflation vs fault rate (H_LP case (d), seed {}) ==\n",
        report.seed
    ));
    s.push_str(&format!(
        "fault-free TWCT = {:.0}\n",
        report.fault_free_objective
    ));
    s.push_str(
        "rate   events cancelled replans blocked  tiers(LP/rho/A)  TWCT       baseline   inflation\n",
    );
    for c in &report.cells {
        let tiers = c
            .tier_counts
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join("/");
        s.push_str(&format!(
            "{:<6.2} {:<6} {:<9} {:<7} {:<8} {:<16} {:<10.0} {:<10.0} {:.3}\n",
            c.rate,
            c.events,
            c.cancelled,
            c.replans,
            c.blocked_units,
            tiers,
            c.objective,
            c.baseline_objective,
            c.inflation
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use coflow_workloads::{generate_trace, TraceConfig};

    #[test]
    fn fault_sweep_runs_and_inflation_is_sane() {
        let inst = generate_trace(&TraceConfig::small(6));
        let report = run_faults(&inst, &[0.0, 0.4], 7, &SimplexOptions::default());
        assert_eq!(report.cells.len(), 2);
        let quiet = &report.cells[0];
        assert_eq!(quiet.events, 0);
        assert_eq!(quiet.replans, 1);
        assert!((quiet.inflation - 1.0).abs() < 1e-9, "rate 0 must not inflate");
        for c in &report.cells {
            if c.cancelled == 0 {
                // Without cancellations (which free capacity for the
                // survivors), faults can only delay completions.
                assert!(c.inflation >= 1.0 - 1e-9, "faults cannot speed things up");
            }
            assert_eq!(c.tier_counts.iter().sum::<usize>(), c.replans);
        }
        let rendered = render_faults(&report);
        assert!(rendered.contains("inflation"));
    }
}
