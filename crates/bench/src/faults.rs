//! Fault-injection experiment: TWCT inflation vs fault rate.
//!
//! Runs the fault-tolerant pipeline (`H_LP`, case (d): grouping +
//! backfilling) against seeded [`FaultPlan`]s of increasing intensity and
//! reports, per rate: how often planning degraded below `H_LP` and by how
//! much the total weighted completion time inflated over the fault-free
//! schedule. The objective comparison is restricted to the coflows that
//! survive (are not cancelled by) each plan, so cancellations do not
//! masquerade as speedups.

use coflow::sched::recovery::{run_with_faults_strict, verify_faulty_outcome, FaultyOutcome};
use coflow::sched::resilient::{fallback_chain, run_resilient};
use coflow::{run_policy_with_faults, AlgorithmSpec, Instance, OrderRule, PolicyRegistry};
use coflow_lp::SimplexOptions;
use coflow_netsim::FaultPlan;
use coflow_workloads::json::{self, fmt_f64, JsonValue};
use std::fmt::Write as _;

/// One fault-rate measurement.
#[derive(Clone, Debug)]
pub struct FaultCell {
    /// Fault rate fed to [`FaultPlan::generate`].
    pub rate: f64,
    /// Injected events at this rate.
    pub events: usize,
    /// Coflows cancelled by the plan before completing.
    pub cancelled: usize,
    /// Planning epochs (1 = never replanned).
    pub replans: usize,
    /// Planned units stranded by outages/degradations.
    pub blocked_units: u64,
    /// Epoch count per fallback tier: `[H_LP, H_ρ, H_A]` for the grid's
    /// LP-backed chain.
    pub tier_counts: Vec<usize>,
    /// `Σ w_k C_k` over surviving coflows, under faults.
    pub objective: f64,
    /// `Σ w_k C_k` over the *same* surviving coflows, fault-free.
    pub baseline_objective: f64,
    /// `objective / baseline_objective` (1.0 when faults cost nothing).
    pub inflation: f64,
}

/// The full experiment: one cell per fault rate.
#[derive(Clone, Debug)]
pub struct FaultReport {
    /// The algorithm under test.
    pub spec: AlgorithmSpec,
    /// Plan seed.
    pub seed: u64,
    /// Fault-free TWCT over all coflows (the reference point).
    pub fault_free_objective: f64,
    /// Per-rate results.
    pub cells: Vec<FaultCell>,
}

/// Runs the fault sweep on `instance` with `H_LP` case (d) under
/// `lp_opts`. `rates` are fault probabilities per port/coflow (see
/// [`FaultPlan::generate`]); each rate gets its own deterministic plan
/// derived from `seed`. A SIGINT (see [`obs::interrupted`]) stops the
/// sweep after the in-flight rate cell; the truncated report is still
/// well-formed.
pub fn run_faults(
    instance: &Instance,
    rates: &[f64],
    seed: u64,
    lp_opts: &SimplexOptions,
) -> FaultReport {
    let spec = AlgorithmSpec {
        order: OrderRule::LpBased,
        grouping: true,
        backfill: true,
    };
    let chain_len = fallback_chain(spec.order).len();

    // Fault-free reference run (same solver budgets, so inflation measures
    // the faults, not the budget).
    let baseline = run_resilient(instance, &spec, lp_opts);
    let horizon = baseline.outcome.makespan().max(1);
    let fault_free_objective = baseline.outcome.objective;

    let mut cells = Vec::with_capacity(rates.len());
    for (i, &rate) in rates.iter().enumerate() {
        // SIGINT: finish the in-flight rate cell, then stop the sweep so
        // the caller can print the partial table and exit 130.
        if obs::interrupted() {
            break;
        }
        cells.push({
            let plan = FaultPlan::generate(
                instance.ports(),
                instance.len(),
                horizon,
                rate,
                seed.wrapping_add(i as u64),
            );
            let out = run_with_faults_strict(instance, &spec, lp_opts, &plan);
            if let Err(e) = verify_faulty_outcome(instance, &plan, &out) {
                panic!("rate {}: invalid fault-tolerant schedule: {}", rate, e);
            }
            let mut tier_counts = vec![0usize; chain_len];
            for &t in &out.tiers {
                tier_counts[t] += 1;
            }
            let cancelled = out.completions.iter().filter(|c| c.is_none()).count();
            // Baseline objective over the surviving set only.
            let baseline_objective: f64 = out
                .completions
                .iter()
                .enumerate()
                .filter(|(_, c)| c.is_some())
                .map(|(k, _)| {
                    instance.coflow(k).weight * baseline.outcome.completions[k] as f64
                })
                .sum();
            let inflation = if baseline_objective > 0.0 {
                out.objective / baseline_objective
            } else {
                1.0
            };
            FaultCell {
                rate,
                events: plan.events.len(),
                cancelled,
                replans: out.replans,
                blocked_units: out.blocked_units,
                tier_counts,
                objective: out.objective,
                baseline_objective,
                inflation,
            }
        });
    }

    FaultReport {
        spec,
        seed,
        fault_free_objective,
        cells,
    }
}

/// Renders the sweep as a plain-text table.
pub fn render_faults(report: &FaultReport) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "== Fault injection: TWCT inflation vs fault rate (H_LP case (d), seed {}) ==\n",
        report.seed
    ));
    s.push_str(&format!(
        "fault-free TWCT = {:.0}\n",
        report.fault_free_objective
    ));
    s.push_str(
        "rate   events cancelled replans blocked  tiers(LP/rho/A)  TWCT       baseline   inflation\n",
    );
    for c in &report.cells {
        let tiers = c
            .tier_counts
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join("/");
        s.push_str(&format!(
            "{:<6.2} {:<6} {:<9} {:<7} {:<8} {:<16} {:<10.0} {:<10.0} {:.3}\n",
            c.rate,
            c.events,
            c.cancelled,
            c.replans,
            c.blocked_units,
            tiers,
            c.objective,
            c.baseline_objective,
            c.inflation
        ));
    }
    s
}

/// Schema tag of the policy-table JSON report; bump on layout changes.
pub const POLICIES_SCHEMA: &str = "coflow-fault-policies/1";

/// The default policy selection compared under fault injection, in report
/// order. These are the combinations the unified engine made possible: the
/// online ρ/w scheduler (fresh and stale priorities) and the priority-greedy
/// baseline, each running slot-by-slot against a live [`FaultPlan`]. A
/// validated report must contain at least these three; registry-driven
/// selections (see [`run_fault_policies_selected`]) may add more.
pub const FAULT_POLICIES: [&str; 3] = ["online", "online-stale", "greedy"];

/// One (policy, rate) measurement.
#[derive(Clone, Debug)]
pub struct PolicyFaultCell {
    /// Registry name of the policy.
    pub policy: String,
    /// Fault rate fed to [`FaultPlan::generate`].
    pub rate: f64,
    /// Injected events at this rate.
    pub events: usize,
    /// Coflows cancelled by the plan before completing.
    pub cancelled: usize,
    /// Planning epochs charged by the engine (1 = quiet plan).
    pub replans: usize,
    /// Planned units stranded by outages/degradations.
    pub blocked_units: u64,
    /// `Σ w_k C_k` over surviving coflows, under faults.
    pub objective: f64,
    /// `Σ w_k C_k` over the *same* surviving coflows, fault-free.
    pub baseline_objective: f64,
    /// `objective / baseline_objective` (1.0 when faults cost nothing).
    pub inflation: f64,
}

/// One policy's row block: fault-free reference plus per-rate cells.
#[derive(Clone, Debug)]
pub struct PolicyFaultRows {
    /// Registry name of the policy.
    pub policy: String,
    /// Fault-free TWCT over all coflows.
    pub fault_free_objective: f64,
    /// Per-rate results.
    pub cells: Vec<PolicyFaultCell>,
}

/// The policy × rate experiment.
#[derive(Clone, Debug)]
pub struct PolicyFaultReport {
    /// Plan seed.
    pub seed: u64,
    /// One block per selected policy, in selection order.
    pub policies: Vec<PolicyFaultRows>,
}

/// Runs the default selection ([`FAULT_POLICIES`]) under the same seeded
/// fault plans that [`run_faults`] feeds the resilient pipeline. See
/// [`run_fault_policies_selected`] for arbitrary registry selections.
pub fn run_fault_policies(instance: &Instance, rates: &[f64], seed: u64) -> PolicyFaultReport {
    let names: Vec<String> = FAULT_POLICIES.iter().map(|s| s.to_string()).collect();
    match run_fault_policies_selected(instance, rates, seed, &names) {
        Ok(report) => report,
        // The default names are always in the registry and fault-capable.
        Err(e) => panic!("default fault-policy selection: {}", e),
    }
}

/// Runs an arbitrary registry selection of fault-capable policies under the
/// same seeded fault plans. Every plan is shared across policies at a given
/// rate, so the rows are directly comparable; the fault-free baseline per
/// policy is measured with a quiet (rate-0) plan through the same engine,
/// which is bit-identical to the clean run. Unknown names and policies whose
/// registry entry has `supports_faults == false` (the open-loop BvN batch
/// planner would strand blocked units forever) are rejected up front. Panics
/// (via [`verify_faulty_outcome`]) if any policy produces an invalid
/// schedule — that is an engine bug, not data.
pub fn run_fault_policies_selected(
    instance: &Instance,
    rates: &[f64],
    seed: u64,
    names: &[String],
) -> Result<PolicyFaultReport, String> {
    let registry = PolicyRegistry::builtin();
    let mut entries = Vec::with_capacity(names.len());
    for name in names {
        let entry = registry.resolve(name)?;
        if !entry.caps.supports_faults {
            return Err(format!(
                "policy '{}' does not support fault injection (open-loop planner)",
                entry.name
            ));
        }
        entries.push(entry);
    }

    let run_policy = |name: &str, plan: &FaultPlan| -> FaultyOutcome {
        // Built fresh per run so every (policy, rate) cell starts cold.
        let entry = registry.resolve(name).unwrap_or_else(|e| panic!("{}", e));
        let mut policy = entry.build(instance);
        match run_policy_with_faults(instance, policy.as_mut(), plan) {
            Ok(out) => out,
            Err(e) => panic!("policy {}: engine bug under faults: {}", name, e),
        }
    };

    // Fault-free reference per policy: a quiet plan through the same
    // engine. The horizon argument is irrelevant at rate 0 (no events).
    let quiet = FaultPlan::generate(instance.ports(), instance.len(), 1, 0.0, seed);
    let baselines: Vec<(String, FaultyOutcome)> = entries
        .iter()
        .map(|entry| (entry.name.to_string(), run_policy(entry.name, &quiet)))
        .collect();
    let horizon = baselines
        .iter()
        .map(|(_, b)| b.executed.makespan())
        .max()
        .unwrap_or(1)
        .max(1);

    let mut policies = Vec::with_capacity(baselines.len());
    for (name, baseline) in baselines.iter() {
        // SIGINT: stop before the next policy row; the partial report
        // still renders and the harness exits 130.
        if obs::interrupted() {
            break;
        }
        {
            let mut cells = Vec::with_capacity(rates.len());
            for (i, &rate) in rates.iter().enumerate() {
                if obs::interrupted() {
                    break;
                }
                cells.push({
                    let plan = FaultPlan::generate(
                        instance.ports(),
                        instance.len(),
                        horizon,
                        rate,
                        seed.wrapping_add(i as u64),
                    );
                    let out = run_policy(name, &plan);
                    if let Err(e) = verify_faulty_outcome(instance, &plan, &out) {
                        panic!("policy {} rate {}: invalid schedule: {}", name, rate, e);
                    }
                    let cancelled = out.completions.iter().filter(|c| c.is_none()).count();
                    let baseline_objective: f64 = out
                        .completions
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| c.is_some())
                        .map(|(k, _)| {
                            // The quiet baseline completes everything.
                            instance.coflow(k).weight
                                * baseline.completions[k].unwrap_or(0) as f64
                        })
                        .sum();
                    let inflation = if baseline_objective > 0.0 {
                        out.objective / baseline_objective
                    } else {
                        1.0
                    };
                    PolicyFaultCell {
                        policy: name.clone(),
                        rate,
                        events: plan.events.len(),
                        cancelled,
                        replans: out.replans,
                        blocked_units: out.blocked_units,
                        objective: out.objective,
                        baseline_objective,
                        inflation,
                    }
                });
            }
            policies.push(PolicyFaultRows {
                policy: name.clone(),
                fault_free_objective: baseline.objective,
                cells,
            });
        }
    }

    Ok(PolicyFaultReport { seed, policies })
}

/// Renders the policy × rate table as plain text.
pub fn render_fault_policies(report: &PolicyFaultReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== Fault injection: engine policies (online/greedy), seed {} ==",
        report.seed
    );
    let _ = writeln!(
        s,
        "{:<13} {:<6} {:<6} {:<9} {:<7} {:<8} {:<10} {:<10} inflation",
        "policy", "rate", "events", "cancelled", "replans", "blocked", "TWCT", "baseline"
    );
    for rows in &report.policies {
        for c in &rows.cells {
            let _ = writeln!(
                s,
                "{:<13} {:<6.2} {:<6} {:<9} {:<7} {:<8} {:<10.0} {:<10.0} {:.3}",
                c.policy,
                c.rate,
                c.events,
                c.cancelled,
                c.replans,
                c.blocked_units,
                c.objective,
                c.baseline_objective,
                c.inflation
            );
        }
    }
    s
}

/// Serializes the policy table as `coflow-fault-policies/1` JSON.
pub fn render_policies_json(report: &PolicyFaultReport) -> String {
    let mut out = String::from("[\n");
    for (pi, rows) in report.policies.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": {},", json::quote(&rows.policy));
        let _ = writeln!(
            out,
            "      \"fault_free_objective\": {},",
            fmt_f64(rows.fault_free_objective)
        );
        out.push_str("      \"cells\": [\n");
        for (ci, c) in rows.cells.iter().enumerate() {
            let _ = write!(
                out,
                "        {{\"rate\": {}, \"events\": {}, \"cancelled\": {}, \
                 \"replans\": {}, \"blocked_units\": {}, \"objective\": {}, \
                 \"baseline_objective\": {}, \"inflation\": {}}}",
                fmt_f64(c.rate),
                c.events,
                c.cancelled,
                c.replans,
                c.blocked_units,
                fmt_f64(c.objective),
                fmt_f64(c.baseline_objective),
                fmt_f64(c.inflation),
            );
            out.push_str(if ci + 1 < rows.cells.len() { ",\n" } else { "\n" });
        }
        out.push_str("      ]\n");
        out.push_str(if pi + 1 < report.policies.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]");
    let mut doc = crate::sink::JsonDoc::new(POLICIES_SCHEMA);
    doc.num("seed", report.seed).raw("policies", out);
    doc.render()
}

fn policy_num_f64(v: &JsonValue) -> Option<f64> {
    match v {
        JsonValue::Num(s) => s.parse().ok(),
        _ => None,
    }
}

/// Validates a serialized `coflow-fault-policies/1` report:
///
/// * the schema tag matches and every policy in [`FAULT_POLICIES`] is
///   present with at least one cell;
/// * every cell carries the numeric keys and `replans >= 1` (the engine
///   charges exactly one planning epoch even on a quiet plan);
/// * any rate-0 cell has zero events and inflation 1 (a quiet plan cannot
///   change the schedule);
/// * cancellation-free cells never deflate (faults only delay survivors).
///
/// Returns a one-line summary on success.
pub fn validate_policies_json(text: &str) -> Result<String, String> {
    let doc = json::parse(text).map_err(|e| format!("parse: {}", e))?;
    match doc.get("schema") {
        Some(JsonValue::Str(s)) if s == POLICIES_SCHEMA => {}
        other => {
            return Err(format!(
                "unsupported schema {:?} (expected {})",
                other, POLICIES_SCHEMA
            ))
        }
    }
    let Some(JsonValue::Arr(policies)) = doc.get("policies") else {
        return Err("missing 'policies' array".to_string());
    };
    let mut seen = Vec::new();
    let mut total_cells = 0usize;
    for p in policies {
        let name = match p.get("name") {
            Some(JsonValue::Str(s)) => s.clone(),
            _ => return Err("policy missing 'name'".to_string()),
        };
        if p.get("fault_free_objective").and_then(policy_num_f64).is_none() {
            return Err(format!("policy {} missing 'fault_free_objective'", name));
        }
        let Some(JsonValue::Arr(cells)) = p.get("cells") else {
            return Err(format!("policy {} missing 'cells' array", name));
        };
        if cells.is_empty() {
            return Err(format!("policy {} has no cells", name));
        }
        for cell in cells {
            let num = |key: &str| -> Result<f64, String> {
                cell.get(key)
                    .and_then(policy_num_f64)
                    .ok_or_else(|| format!("policy {} cell missing '{}'", name, key))
            };
            let rate = num("rate")?;
            let events = num("events")?;
            let cancelled = num("cancelled")?;
            let replans = num("replans")?;
            num("blocked_units")?;
            num("objective")?;
            num("baseline_objective")?;
            let inflation = num("inflation")?;
            if replans < 1.0 {
                return Err(format!(
                    "policy {} rate {}: replans {} < 1 (engine must charge an epoch)",
                    name, rate, replans
                ));
            }
            if rate == 0.0 && (events != 0.0 || (inflation - 1.0).abs() > 1e-9) {
                return Err(format!(
                    "policy {}: quiet plan has {} events, inflation {}",
                    name, events, inflation
                ));
            }
            if cancelled == 0.0 && inflation < 1.0 - 1e-9 {
                return Err(format!(
                    "policy {} rate {}: inflation {} < 1 without cancellations",
                    name, rate, inflation
                ));
            }
            total_cells += 1;
        }
        seen.push(name);
    }
    for required in FAULT_POLICIES {
        if !seen.iter().any(|s| s == required) {
            return Err(format!("policy '{}' missing from report", required));
        }
    }
    Ok(format!(
        "{} policies, {} cells, all invariants hold",
        seen.len(),
        total_cells
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use coflow_workloads::{generate_trace, TraceConfig};

    #[test]
    fn fault_sweep_runs_and_inflation_is_sane() {
        let inst = generate_trace(&TraceConfig::small(6));
        let report = run_faults(&inst, &[0.0, 0.4], 7, &SimplexOptions::default());
        assert_eq!(report.cells.len(), 2);
        let quiet = &report.cells[0];
        assert_eq!(quiet.events, 0);
        assert_eq!(quiet.replans, 1);
        assert!((quiet.inflation - 1.0).abs() < 1e-9, "rate 0 must not inflate");
        for c in &report.cells {
            if c.cancelled == 0 {
                // Without cancellations (which free capacity for the
                // survivors), faults can only delay completions.
                assert!(c.inflation >= 1.0 - 1e-9, "faults cannot speed things up");
            }
            assert_eq!(c.tier_counts.iter().sum::<usize>(), c.replans);
        }
        let rendered = render_faults(&report);
        assert!(rendered.contains("inflation"));
    }

    #[test]
    fn policy_table_covers_every_policy_and_json_round_trips() {
        let inst = generate_trace(&TraceConfig::small(9));
        let report = run_fault_policies(&inst, &[0.0, 0.5], 11);
        assert_eq!(report.policies.len(), FAULT_POLICIES.len());
        for rows in &report.policies {
            assert_eq!(rows.cells.len(), 2);
            let quiet = &rows.cells[0];
            assert_eq!(quiet.events, 0);
            assert_eq!(quiet.replans, 1, "quiet plan charges exactly one epoch");
            assert!((quiet.inflation - 1.0).abs() < 1e-9);
        }
        let text = render_policies_json(&report);
        let summary = validate_policies_json(&text).expect("valid report");
        assert!(summary.contains("cells"));
        assert!(validate_policies_json("{\"schema\": \"other/9\"}").is_err());
        // A deflating cancellation-free cell must be rejected.
        let broken = text.replacen("\"inflation\": 1.0}", "\"inflation\": 0.5}", 1);
        assert!(validate_policies_json(&broken).is_err());
    }

    #[test]
    fn registry_selection_extends_the_policy_table() {
        let inst = generate_trace(&TraceConfig::small(9));
        let names: Vec<String> = ["greedy", "shafiee-ghaderi", "im-purohit"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let report =
            run_fault_policies_selected(&inst, &[0.0, 0.5], 11, &names).expect("valid selection");
        assert_eq!(report.policies.len(), 3);
        for (rows, want) in report.policies.iter().zip(&names) {
            assert_eq!(&rows.policy, want, "selection order is preserved");
            let quiet = &rows.cells[0];
            assert_eq!(quiet.events, 0);
            assert!((quiet.inflation - 1.0).abs() < 1e-9);
        }

        // Unknown names and fault-incapable policies are rejected up front.
        let unknown = vec!["no-such-policy".to_string()];
        assert!(run_fault_policies_selected(&inst, &[0.0], 11, &unknown).is_err());
        let open_loop = vec!["bvn-batch".to_string()];
        let err = run_fault_policies_selected(&inst, &[0.0], 11, &open_loop).unwrap_err();
        assert!(err.contains("does not support fault injection"), "{}", err);
    }
}
