//! Bench-side glue for the run ledger: path resolution, record builders
//! from the crate's report structures, and the record selectors the
//! `diff`/`report` subcommands accept.
//!
//! The ledger itself — schema, rendering, append discipline — lives in
//! [`obs::ledger`]; this module only knows how to turn a
//! [`ProfileReport`], a [`PinReport`], or a gate outcome into one
//! self-contained [`LedgerRecord`], and how to pick records back out of a
//! loaded history (`latest`, `prev`, `~N`, `#SEQ`, `green`).

use crate::grid::case_label;
use crate::pins::PinReport;
use crate::profile::{ProfileReport, MEM_STAGES, STAGES};
use obs::ledger::LedgerRecord;

/// Default ledger file, relative to the working directory. Overridden by
/// `--ledger PATH` or the `COFLOW_LEDGER` environment variable; the
/// values `none` / `off` disable appending entirely.
pub const DEFAULT_LEDGER: &str = "LEDGER.ndjson";

/// Resolves the ledger path from CLI flag > `COFLOW_LEDGER` > default.
/// Returns `None` when ledger writing is disabled.
pub fn ledger_path(flag: Option<&str>) -> Option<String> {
    let chosen = match flag {
        Some(f) => f.to_string(),
        None => std::env::var("COFLOW_LEDGER").unwrap_or_else(|_| DEFAULT_LEDGER.to_string()),
    };
    if chosen == "none" || chosen == "off" {
        None
    } else {
        Some(chosen)
    }
}

/// A minimal run record: command + workload identity + wall clock +
/// whole-process memory marks. The builders below start here and attach
/// their per-stage and per-cell payloads.
pub fn base_record(command: &str, label: &str, seed: u64, fingerprint: &str) -> LedgerRecord {
    let stats = obs::alloc::stats();
    LedgerRecord {
        kind: "run".to_string(),
        command: command.to_string(),
        label: label.to_string(),
        seed,
        fingerprint: fingerprint.to_string(),
        peak_rss_kb: obs::alloc::peak_rss_kb().unwrap_or(0),
        peak_live_bytes: stats.peak_live_bytes,
        alloc_calls: stats.alloc_calls,
        ..LedgerRecord::default()
    }
}

/// Builds the `profile` run record: per-stage wall-clock and allocation
/// attribution summed across the 12 grid cells, one objective entry per
/// cell keyed `RULE/case` (e.g. `H_LP/d`).
pub fn record_from_profile(report: &ProfileReport, elapsed_ms: f64) -> LedgerRecord {
    let fingerprint = format!("ports={} coflows={}", report.ports, report.coflows);
    let mut rec = base_record(
        "profile",
        &format!("{}-cell grid", report.cells.len()),
        report.seed,
        &fingerprint,
    );
    rec.elapsed_ms = elapsed_ms;
    for stage in STAGES.iter().filter(|s| **s != "other") {
        let total: f64 = report.cells.iter().map(|c| c.stages.get(stage)).sum();
        rec.stages_ms.push((stage.to_string(), total));
    }
    for stage in MEM_STAGES {
        let allocs: u64 = report.cells.iter().map(|c| c.mem.allocs(stage)).sum();
        let bytes: u64 = report.cells.iter().map(|c| c.mem.bytes(stage)).sum();
        rec.stage_allocs.push((stage.to_string(), allocs));
        rec.stage_alloc_bytes.push((stage.to_string(), bytes));
    }
    for cell in &report.cells {
        let label =
            format!("{}/{}", cell.order.name(), case_label(cell.grouping, cell.backfill));
        rec.objectives.push((label, cell.objective));
    }
    rec
}

/// Builds the `scale` run record: per-stage wall-clock summed across the
/// swept cells, one objective entry per cell keyed by its `m=…/n=…`
/// label — the dashboard and `diff` read scale runs through this record
/// exactly like profile runs.
pub fn record_from_scale(report: &crate::scale::ScaleReport, elapsed_ms: f64) -> LedgerRecord {
    let fingerprint = format!(
        "window={} cells={}",
        report.window,
        report
            .cells
            .iter()
            .map(|c| format!("{}x{}", c.ports, c.coflows))
            .collect::<Vec<_>>()
            .join(",")
    );
    let mut rec = base_record(
        "scale",
        &format!("{}-cell scale sweep", report.cells.len()),
        report.seed,
        &fingerprint,
    );
    rec.elapsed_ms = elapsed_ms;
    for stage in crate::scale::SCALE_STAGES.iter().filter(|s| **s != "total") {
        let total: f64 = report.cells.iter().map(|c| c.stage(stage)).sum();
        rec.stages_ms.push((stage.to_string(), total));
    }
    for cell in &report.cells {
        rec.objectives
            .push((crate::scale::cell_label(cell.ports, cell.coflows), cell.objective));
    }
    rec
}

/// Builds the `pin` run record: one objective entry per pinned cell,
/// engine wall-clock as the elapsed time payload.
pub fn record_from_pins(report: &PinReport, elapsed_ms: f64) -> LedgerRecord {
    let mut rec = base_record(
        "pin",
        &format!("{} pins, engine {:.0} ms", report.pins.len(), report.engine_ms),
        report.seed,
        "pins",
    );
    rec.elapsed_ms = elapsed_ms;
    rec.stages_ms.push(("engine".to_string(), report.engine_ms));
    for pin in &report.pins {
        rec.objectives.push((pin.label.clone(), pin.objective));
    }
    rec
}

/// Builds the `tournament` run record: per-policy clean TWCT keyed
/// `twct/NAME` and measured approximation ratio keyed `ratio/NAME` (the
/// dashboard sparklines read the latter), per-policy wall-clock as the
/// stage entries.
pub fn record_from_tournament(
    report: &crate::tournament::TournamentReport,
    elapsed_ms: f64,
) -> LedgerRecord {
    let fingerprint = format!(
        "ports={} coflows={} lp_bound={} fault_rate={}",
        report.ports, report.coflows, report.lp_bound, report.fault_rate
    );
    let mut rec = base_record(
        "tournament",
        &format!("{}-policy tournament", report.rows.len()),
        report.seed,
        &fingerprint,
    );
    rec.elapsed_ms = elapsed_ms;
    for row in &report.rows {
        rec.objectives.push((format!("twct/{}", row.policy), row.objective));
        rec.objectives.push((format!("ratio/{}", row.policy), row.ratio));
        rec.stages_ms.push((row.policy.clone(), row.wall_ms));
    }
    rec
}

/// Builds a gate-verdict record. `verdicts` carries per-check outcomes
/// (`pass`/`fail`); the overall status is derived — any `fail` fails.
pub fn verdict_record(gate: &str, verdicts: Vec<(String, String)>, note: &str) -> LedgerRecord {
    let mut rec = LedgerRecord {
        kind: "verdict".to_string(),
        command: gate.to_string(),
        label: note.to_string(),
        ..LedgerRecord::default()
    };
    let overall =
        if verdicts.iter().any(|(_, v)| v != "pass") { "fail" } else { "pass" };
    rec.verdicts = verdicts;
    rec.verdicts.push(("overall".to_string(), overall.to_string()));
    rec
}

/// Selects one record out of a loaded ledger history (oldest first):
///
/// * `latest` — the most recent **run** record;
/// * `prev` — the run record before `latest` with the same command;
/// * `~N` — N run records before `latest` (so `~0` == `latest`);
/// * `#SEQ` — the record with that exact sequence number (any kind);
/// * `green` — the most recent run record not followed by a failing
///   verdict before the next run record (i.e. the last run whose gates,
///   if any ran, all passed).
pub fn select<'a>(records: &'a [LedgerRecord], spec: &str) -> Result<&'a LedgerRecord, String> {
    if records.is_empty() {
        return Err("ledger is empty".to_string());
    }
    let runs: Vec<&LedgerRecord> = records.iter().filter(|r| r.kind == "run").collect();
    let no_runs = || "ledger has no run records".to_string();
    if let Some(seq) = spec.strip_prefix('#') {
        let seq: u64 = seq.parse().map_err(|_| format!("bad seq selector {:?}", spec))?;
        return records
            .iter()
            .find(|r| r.seq == seq)
            .ok_or_else(|| format!("no record with seq {}", seq));
    }
    if let Some(back) = spec.strip_prefix('~') {
        let back: usize = back.parse().map_err(|_| format!("bad selector {:?}", spec))?;
        if back + 1 > runs.len() {
            return Err(format!("ledger has only {} run records, wanted ~{}", runs.len(), back));
        }
        return Ok(runs[runs.len() - 1 - back]);
    }
    match spec {
        "latest" => runs.last().copied().ok_or_else(no_runs),
        "prev" => {
            let latest = runs.last().ok_or_else(no_runs)?;
            runs.iter()
                .rev()
                .skip(1)
                .find(|r| r.command == latest.command)
                .copied()
                .ok_or_else(|| {
                    format!("no earlier {:?} run record to diff against", latest.command)
                })
        }
        "green" => {
            // A run is green when no verdict record between it and the
            // next run record carries a fail.
            for (i, rec) in records.iter().enumerate().rev() {
                if rec.kind != "run" {
                    continue;
                }
                let clean = records[i + 1..]
                    .iter()
                    .take_while(|r| r.kind != "run")
                    .all(|r| r.verdicts.iter().all(|(_, v)| v == "pass"));
                if clean {
                    return Ok(rec);
                }
            }
            Err("no green run record in the ledger".to_string())
        }
        other => Err(format!(
            "unknown selector {:?} (expected latest, prev, ~N, #SEQ, green, or a report path)",
            other
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(seq: u64, command: &str) -> LedgerRecord {
        LedgerRecord {
            seq,
            kind: "run".to_string(),
            command: command.to_string(),
            ..LedgerRecord::default()
        }
    }

    fn verdict(seq: u64, status: &str) -> LedgerRecord {
        LedgerRecord {
            seq,
            kind: "verdict".to_string(),
            command: "check-perf".to_string(),
            verdicts: vec![("overall".to_string(), status.to_string())],
            ..LedgerRecord::default()
        }
    }

    #[test]
    fn path_resolution_prefers_flag_and_honors_disable() {
        assert_eq!(ledger_path(Some("custom.ndjson")), Some("custom.ndjson".to_string()));
        assert_eq!(ledger_path(Some("none")), None);
        assert_eq!(ledger_path(Some("off")), None);
        // Without a flag the default (or env) applies; at minimum it is Some.
        assert!(ledger_path(None).is_some() || std::env::var("COFLOW_LEDGER").is_ok());
    }

    #[test]
    fn selectors_pick_the_documented_records() {
        let records = vec![
            run(1, "profile"),
            verdict(2, "pass"),
            run(3, "pin"),
            run(4, "profile"),
            verdict(5, "fail"),
        ];
        assert_eq!(select(&records, "latest").unwrap().seq, 4);
        assert_eq!(select(&records, "prev").unwrap().seq, 1);
        assert_eq!(select(&records, "~1").unwrap().seq, 3);
        assert_eq!(select(&records, "~2").unwrap().seq, 1);
        assert_eq!(select(&records, "#3").unwrap().seq, 3);
        // Latest run (seq 4) is followed by a failing verdict; seq 3 is
        // followed by none before the next run — green.
        assert_eq!(select(&records, "green").unwrap().seq, 3);
        assert!(select(&records, "nonsense").is_err());
        assert!(select(&[], "latest").is_err());
    }

    #[test]
    fn verdict_record_derives_overall_status() {
        let rec = verdict_record(
            "check-all",
            vec![
                ("clippy".to_string(), "pass".to_string()),
                ("perf".to_string(), "fail".to_string()),
            ],
            "",
        );
        assert_eq!(rec.kind, "verdict");
        assert!(rec.verdicts.contains(&("overall".to_string(), "fail".to_string())));
        let rec = verdict_record("check-all", vec![("clippy".to_string(), "pass".to_string())], "");
        assert!(rec.verdicts.contains(&("overall".to_string(), "pass".to_string())));
    }
}
