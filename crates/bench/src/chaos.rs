//! Adversarial chaos harness for the crash-safe engine.
//!
//! Two attack surfaces, one report:
//!
//! * **Process kills** ([`run_chaos`]): every engine-driven policy is run
//!   under a seeded fault plan while being killed at randomized decision
//!   epochs — each kill serializes a full [`EngineSnapshot`] to JSON,
//!   re-parses it, and resumes from the restored engine, exactly the
//!   crash/restart path of a real deployment. Per kill the harness checks
//!   **demand conservation** (delivered + residual = initial for every
//!   surviving coflow), **monotone progress** (time and per-coflow residual
//!   demand never move backwards), and at the end that **all surviving
//!   demand completed** ([`verify_faulty_outcome`]) and the outcome is
//!   **bit-identical** to an uninterrupted run — objective bits, replans,
//!   tiers, and the executed trace.
//! * **Adversarial faults** ([`worst_window_search`]): instead of seeded
//!   random outages, [`FaultPlan::adversarial`] targets the busiest ports
//!   of the heaviest-`ρ·w` coflow, and the harness searches outage start
//!   slots (candidates derived from the clean run's makespan) for the
//!   window maximizing TWCT inflation, compared against seeded-random
//!   plans at the same event budget.
//!
//! The report serializes as `coflow-chaos/1` and is validated by the
//! in-repo parser ([`validate_chaos_json`]); `scripts/check-chaos.sh` runs
//! a fixed-seed configuration of both sections as a tier-1 gate.

use coflow::sched::engine::{run_policy_with_faults, Engine};
use coflow::sched::recovery::verify_faulty_outcome;
use coflow::sched::snapshot::EngineSnapshot;
use coflow::{
    compute_order, group_by_doubling, AlgorithmSpec, BvnBatchPolicy, ExecOptions, FaultyOutcome,
    GreedyPolicy, Instance, OnlineOptions, OnlineRhoPolicy, OrderRule, Policy, ResilientPolicy,
    WatchdogConfig, WatchdogPolicy,
};
use coflow_lp::SimplexOptions;
use coflow_netsim::{AdversarialConfig, FaultPlan};
use coflow_workloads::json::{self, fmt_f64, JsonValue};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Schema tag of the chaos report; bump on layout changes.
pub const SCHEMA: &str = "coflow-chaos/1";

/// The policies the kill harness drives, in report order.
pub const CHAOS_POLICIES: [&str; 4] = ["resilient", "online", "greedy", "watchdog-bvn"];

/// Chaos-run configuration.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Kill/restore interruptions per policy run.
    pub kills: usize,
    /// Seed for the fault plan and the kill schedule.
    pub seed: u64,
    /// Fault rate of the seeded background plan.
    pub fault_rate: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            kills: 4,
            seed: 2015,
            fault_rate: 0.3,
        }
    }
}

/// One policy's kill-harness result.
#[derive(Clone, Debug)]
pub struct ChaosRound {
    /// Policy label (one of [`CHAOS_POLICIES`]).
    pub policy: String,
    /// Kills actually performed (a short run may finish before the
    /// schedule calls for more).
    pub kills: usize,
    /// Decision epochs of the interrupted run.
    pub epochs: u64,
    /// Snapshot document bytes of the largest checkpoint.
    pub snapshot_bytes: usize,
    /// Final TWCT over survivors.
    pub objective: f64,
    /// Planning epochs of the final outcome.
    pub replans: usize,
    /// `true` when the interrupted run matched the uninterrupted reference
    /// bit for bit (objective bits, replans, tiers, executed trace).
    pub bit_identical: bool,
}

/// One adversarial-window measurement.
#[derive(Clone, Debug)]
pub struct WindowCell {
    /// Outage start slot.
    pub start: u64,
    /// TWCT inflation of the adversarial plan over the clean run.
    pub adversarial_inflation: f64,
    /// Inflation of a seeded-random plan with a matched event budget.
    pub random_inflation: f64,
}

/// The adversarial worst-window search result.
#[derive(Clone, Debug)]
pub struct WindowReport {
    /// Ports attacked per side.
    pub ports: usize,
    /// Outage window length in slots.
    pub window: u64,
    /// Every candidate start, in scan order.
    pub cells: Vec<WindowCell>,
    /// Start slot of the worst window found.
    pub worst_start: u64,
    /// Its inflation.
    pub worst_inflation: f64,
}

/// The full chaos report.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Configuration used.
    pub config: ChaosConfig,
    /// One round per policy.
    pub rounds: Vec<ChaosRound>,
    /// The adversarial search (when run).
    pub windows: Option<WindowReport>,
    /// True when a SIGINT cut the run short: rounds may be missing and the
    /// validator relaxes its policy-coverage check accordingly.
    pub partial: bool,
}

/// Builds a fresh instance of the named chaos policy.
fn make_policy(instance: &Instance, name: &str, lp_opts: &SimplexOptions) -> Box<dyn Policy> {
    match name {
        "resilient" => Box::new(ResilientPolicy::new(
            AlgorithmSpec {
                order: OrderRule::LoadOverWeight,
                grouping: true,
                backfill: true,
            },
            lp_opts.clone(),
        )),
        "online" => Box::new(OnlineRhoPolicy::new(instance, OnlineOptions::default())),
        "greedy" => {
            let order = compute_order(instance, OrderRule::LoadOverWeight);
            Box::new(GreedyPolicy::new(instance, order))
        }
        "watchdog-bvn" => {
            // The batch pipeline has no replanning story of its own; the
            // watchdog's Finished-rescue makes it survivable under faults.
            let order = compute_order(instance, OrderRule::LoadOverWeight);
            let batches = group_by_doubling(instance, &order).groups;
            Box::new(WatchdogPolicy::over_bvn(
                WatchdogConfig::default(),
                BvnBatchPolicy::new(instance, order, batches, ExecOptions::default()),
            ))
        }
        other => panic!("unknown chaos policy '{}'", other),
    }
}

/// Initial demand totals per coflow.
fn initial_totals(instance: &Instance) -> Vec<u64> {
    (0..instance.len())
        .map(|k| instance.coflow(k).demand.total())
        .collect()
}

/// Units delivered per coflow according to a snapshot's executed trace.
fn delivered_per_coflow(snapshot: &EngineSnapshot, n: usize) -> Vec<u64> {
    let mut delivered = vec![0u64; n];
    for run in &snapshot.sim.executed.runs {
        for t in &run.transfers {
            delivered[t.coflow] += t.units * run.duration;
        }
    }
    delivered
}

/// Drives one policy run, killing and restoring at seeded-random epochs,
/// checking invariants at every kill. Returns the round summary (or
/// `Ok(None)` when a SIGINT abandoned the round mid-run — the partial
/// report keeps the rounds already finished) or the first invariant
/// violation.
fn chaos_run(
    instance: &Instance,
    name: &str,
    plan: &FaultPlan,
    lp_opts: &SimplexOptions,
    kills: usize,
    seed: u64,
) -> Result<Option<ChaosRound>, String> {
    let fail = |what: String| format!("policy {}: {}", name, what);
    let totals = initial_totals(instance);
    let n = instance.len();

    // Uninterrupted reference.
    let mut reference_policy = make_policy(instance, name, lp_opts);
    let reference = run_policy_with_faults(instance, reference_policy.as_mut(), plan)
        .map_err(|e| fail(format!("reference run failed: {}", e)))?;

    // Interrupted run: step, kill at scheduled epochs, restore from the
    // serialized document, continue.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut engine = Engine::new(instance, plan);
    let mut policy = make_policy(instance, name, lp_opts);
    let mut performed = 0usize;
    let mut epochs = 0u64;
    let mut snapshot_bytes = 0usize;
    let mut next_kill: u64 = rng.gen_range(1..=6);
    let mut last_now = 0u64;
    let mut last_remaining = totals.clone();
    loop {
        // SIGINT mid-round: abandon this round (its engine state is
        // discardable) so the caller can write the partial report through
        // the same atomic path as a completed one.
        if obs::interrupted() {
            return Ok(None);
        }
        let more = engine
            .step(policy.as_mut())
            .map_err(|e| fail(format!("step failed: {}", e)))?;
        epochs += 1;
        if !more {
            break;
        }
        // Count down only while kills remain: once the budget is spent the
        // countdown is disarmed (decrementing past zero underflows in
        // debug builds; release builds used to wrap silently, which
        // happened to behave the same as disarming).
        if performed >= kills {
            continue;
        }
        next_kill -= 1;
        if next_kill == 0 {
            performed += 1;
            next_kill = rng.gen_range(1..=6);
            let snapshot = engine
                .checkpoint(policy.as_ref())
                .map_err(|e| fail(format!("checkpoint failed: {}", e)))?;
            let text = snapshot.to_json();
            snapshot_bytes = snapshot_bytes.max(text.len());
            let parsed = EngineSnapshot::from_json(&text)
                .map_err(|e| fail(format!("snapshot re-parse failed: {}", e)))?;

            // Invariant: monotone progress. Time never rewinds; residual
            // demand never grows.
            if parsed.sim.now < last_now {
                return Err(fail(format!(
                    "time moved backwards: {} -> {}",
                    last_now, parsed.sim.now
                )));
            }
            last_now = parsed.sim.now;
            for (k, last) in last_remaining.iter_mut().enumerate().take(n) {
                if parsed.sim.remaining_total[k] > *last {
                    return Err(fail(format!(
                        "coflow {}: residual demand grew {} -> {}",
                        k, *last, parsed.sim.remaining_total[k]
                    )));
                }
                *last = parsed.sim.remaining_total[k];
            }

            // Invariant: demand conservation. For surviving coflows every
            // initial unit is either delivered or still residual;
            // cancellation drops residual demand but never un-delivers.
            let delivered = delivered_per_coflow(&parsed, n);
            for k in 0..n {
                if parsed.sim.cancelled[k] {
                    if delivered[k] > totals[k] {
                        return Err(fail(format!(
                            "coflow {}: delivered {} > initial {}",
                            k, delivered[k], totals[k]
                        )));
                    }
                } else if delivered[k] + parsed.sim.remaining_total[k] != totals[k] {
                    return Err(fail(format!(
                        "coflow {}: delivered {} + residual {} != initial {}",
                        k, delivered[k], parsed.sim.remaining_total[k], totals[k]
                    )));
                }
            }

            // Kill: throw the live engine and policy away; resume from the
            // parsed document alone.
            let (restored_engine, restored_policy) = Engine::restore(instance, parsed)
                .map_err(|e| fail(format!("restore failed: {}", e)))?;
            engine = restored_engine;
            policy = restored_policy;
        }
    }
    let outcome = engine.into_outcome(policy.as_mut());

    // Invariant: all surviving demand completed, on a structurally valid
    // schedule.
    verify_faulty_outcome(instance, plan, &outcome)
        .map_err(|e| fail(format!("final schedule invalid: {}", e)))?;

    // Invariant: interrupted == uninterrupted, bit for bit.
    let bit_identical = outcome.objective.to_bits() == reference.objective.to_bits()
        && outcome.replans == reference.replans
        && outcome.tiers == reference.tiers
        && outcome.executed == reference.executed
        && outcome.completions == reference.completions;
    if !bit_identical {
        return Err(fail(format!(
            "interrupted run diverged: objective {} (bits {:#x}) vs reference {} (bits {:#x}), \
             replans {} vs {}",
            outcome.objective,
            outcome.objective.to_bits(),
            reference.objective,
            reference.objective.to_bits(),
            outcome.replans,
            reference.replans,
        )));
    }

    Ok(Some(ChaosRound {
        policy: name.to_string(),
        kills: performed,
        epochs,
        snapshot_bytes,
        objective: outcome.objective,
        replans: outcome.replans,
        bit_identical,
    }))
}

/// Runs the kill harness over every policy in [`CHAOS_POLICIES`]. Panics
/// on the first invariant violation — a violation is an engine bug, not
/// data.
pub fn run_chaos(instance: &Instance, config: &ChaosConfig) -> ChaosReport {
    let lp_opts = SimplexOptions::default();
    // A shared seeded plan so rounds are comparable; the horizon comes from
    // a cheap clean reference (greedy).
    let order = compute_order(instance, OrderRule::LoadOverWeight);
    let clean = coflow::run_greedy(instance, order);
    let horizon = clean.makespan().max(1);
    let plan = FaultPlan::generate(
        instance.ports(),
        instance.len(),
        horizon,
        config.fault_rate,
        config.seed,
    );
    let mut rounds = Vec::with_capacity(CHAOS_POLICIES.len());
    let mut partial = false;
    for name in CHAOS_POLICIES {
        // SIGINT: stop between rounds; the caller writes a partial report.
        if obs::interrupted() {
            partial = true;
            break;
        }
        if obs::telemetry::active() {
            obs::telemetry::emit(&obs::telemetry::Sample {
                source: "chaos",
                label: name,
                completed_coflows: rounds.len() as u64,
                ..Default::default()
            });
        }
        match chaos_run(instance, name, &plan, &lp_opts, config.kills, config.seed) {
            Ok(Some(round)) => rounds.push(round),
            Ok(None) => {
                // Interrupted mid-round: the abandoned round is dropped.
                partial = true;
                break;
            }
            Err(e) => panic!("chaos invariant violated: {}", e),
        }
    }
    ChaosReport {
        config: *config,
        rounds,
        windows: None,
        partial,
    }
}

/// Searches adversarial outage windows for the worst TWCT inflation.
///
/// The attack targets the busiest ports of the heaviest `w·ρ` coflow
/// ([`FaultPlan::adversarial`]) with `ports`-per-side outages of length
/// `window`; candidate start slots sweep the clean makespan. Each
/// adversarial plan is compared against a seeded-random plan whose event
/// count is matched (same number of outages over the same horizon), so the
/// reported gap measures *targeting*, not budget.
pub fn worst_window_search(
    instance: &Instance,
    ports: usize,
    window: u64,
    candidates: usize,
    seed: u64,
) -> WindowReport {
    let spec = AlgorithmSpec {
        order: OrderRule::LoadOverWeight,
        grouping: true,
        backfill: true,
    };
    let lp_opts = SimplexOptions::default();
    let mut clean_policy = ResilientPolicy::new(spec, lp_opts.clone());
    let clean = match run_policy_with_faults(instance, &mut clean_policy, &FaultPlan::new(vec![])) {
        Ok(out) => out,
        Err(e) => panic!("worst-window: clean reference failed: {}", e),
    };
    let clean_objective = clean.objective.max(f64::MIN_POSITIVE);
    let makespan = clean.executed.makespan().max(2);

    let demands = instance.demand_matrices();
    let weights = instance.weights();
    let survivors_objective = |out: &FaultyOutcome| -> f64 {
        // Inflation over the same surviving set, as in the fault sweep.
        let base: f64 = out
            .completions
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_some())
            .map(|(k, _)| weights[k] * clean.completions[k].unwrap_or(0) as f64)
            .sum();
        if base > 0.0 {
            out.objective / base
        } else {
            out.objective / clean_objective
        }
    };

    let candidates = candidates.max(1);
    let mut cells = Vec::with_capacity(candidates);
    for c in 0..candidates {
        // SIGINT: stop between candidates; partial cells still validate.
        if obs::interrupted() && !cells.is_empty() {
            break;
        }
        // Sweep start slots across the clean makespan.
        let start = 1 + (makespan - 1) * c as u64 / candidates as u64;
        let cfg = AdversarialConfig {
            ports,
            window,
            start,
        };
        let adv_plan = FaultPlan::adversarial(&demands, &weights, &cfg);
        let mut adv_policy = ResilientPolicy::new(spec, lp_opts.clone());
        let adv = match run_policy_with_faults(instance, &mut adv_policy, &adv_plan) {
            Ok(out) => out,
            Err(e) => panic!("worst-window: adversarial run failed: {}", e),
        };
        if let Err(e) = verify_faulty_outcome(instance, &adv_plan, &adv) {
            panic!("worst-window: adversarial schedule invalid: {}", e);
        }

        // Matched-budget random plan: same outage count over the same
        // horizon, seeded per candidate; rebuilt until the budget matches
        // (the generator is probabilistic) or a bounded number of tries.
        let budget = adv_plan.events.len();
        let mut random_plan = FaultPlan::new(vec![]);
        for attempt in 0..32u64 {
            let trial_rate = (budget as f64) / (2.0 * instance.ports() as f64);
            let trial = FaultPlan::generate(
                instance.ports(),
                0, // no cancellations: outage budget only
                makespan,
                trial_rate.clamp(0.01, 0.95),
                seed.wrapping_add(c as u64 * 131 + attempt),
            );
            random_plan = trial;
            if random_plan.events.len() == budget {
                break;
            }
        }
        let mut rnd_policy = ResilientPolicy::new(spec, lp_opts.clone());
        let rnd = match run_policy_with_faults(instance, &mut rnd_policy, &random_plan) {
            Ok(out) => out,
            Err(e) => panic!("worst-window: random run failed: {}", e),
        };

        cells.push(WindowCell {
            start,
            adversarial_inflation: survivors_objective(&adv),
            random_inflation: survivors_objective(&rnd),
        });
    }
    let (worst_start, worst_inflation) = cells
        .iter()
        .map(|c| (c.start, c.adversarial_inflation))
        .fold((0, f64::MIN), |acc, x| if x.1 > acc.1 { x } else { acc });
    WindowReport {
        ports,
        window,
        cells,
        worst_start,
        worst_inflation,
    }
}

/// Renders the report as plain text.
pub fn render_chaos(report: &ChaosReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== Chaos harness: {} kills/policy, fault rate {}, seed {} ==",
        report.config.kills, report.config.fault_rate, report.config.seed
    );
    let _ = writeln!(
        s,
        "{:<14} {:>5} {:>7} {:>9} {:>12} {:>7}  bit-identical",
        "policy", "kills", "epochs", "snapshot", "TWCT", "replans"
    );
    for r in &report.rounds {
        let _ = writeln!(
            s,
            "{:<14} {:>5} {:>7} {:>8}B {:>12.1} {:>7}  {}",
            r.policy, r.kills, r.epochs, r.snapshot_bytes, r.objective, r.replans,
            if r.bit_identical { "yes" } else { "NO" }
        );
    }
    if let Some(w) = &report.windows {
        let _ = writeln!(
            s,
            "-- adversarial windows: {} ports/side, {} slots --",
            w.ports, w.window
        );
        let _ = writeln!(s, "{:>7} {:>13} {:>13}", "start", "adversarial", "random");
        for c in &w.cells {
            let _ = writeln!(
                s,
                "{:>7} {:>13.3} {:>13.3}",
                c.start, c.adversarial_inflation, c.random_inflation
            );
        }
        let _ = writeln!(
            s,
            "worst window starts at slot {} (inflation {:.3})",
            w.worst_start, w.worst_inflation
        );
    }
    s
}

/// Serializes the report as `coflow-chaos/1` JSON.
pub fn render_chaos_json(report: &ChaosReport) -> String {
    let mut rounds = String::from("[\n");
    for (i, r) in report.rounds.iter().enumerate() {
        let _ = write!(
            rounds,
            "    {{\"policy\": {}, \"kills\": {}, \"epochs\": {}, \"snapshot_bytes\": {}, \
             \"objective\": {}, \"objective_bits\": {}, \"replans\": {}, \"bit_identical\": {}}}",
            json::quote(&r.policy),
            r.kills,
            r.epochs,
            r.snapshot_bytes,
            fmt_f64(r.objective),
            r.objective.to_bits(),
            r.replans,
            r.bit_identical,
        );
        rounds.push_str(if i + 1 < report.rounds.len() { ",\n" } else { "\n" });
    }
    rounds.push_str("  ]");
    let mut doc = crate::sink::JsonDoc::new(SCHEMA);
    doc.num("seed", report.config.seed)
        .num("kills", report.config.kills)
        .float("fault_rate", report.config.fault_rate)
        .num("partial", report.partial)
        .raw("rounds", rounds);
    match &report.windows {
        None => doc.raw("windows", "null"),
        Some(w) => {
            let mut out = String::new();
            let _ = write!(
                out,
                "{{\n    \"ports\": {},\n    \"window\": {},\n    \"worst_start\": {},\n    \"worst_inflation\": {},\n    \"cells\": [\n",
                w.ports,
                w.window,
                w.worst_start,
                fmt_f64(w.worst_inflation)
            );
            for (i, c) in w.cells.iter().enumerate() {
                let _ = write!(
                    out,
                    "      {{\"start\": {}, \"adversarial_inflation\": {}, \"random_inflation\": {}}}",
                    c.start,
                    fmt_f64(c.adversarial_inflation),
                    fmt_f64(c.random_inflation),
                );
                out.push_str(if i + 1 < w.cells.len() { ",\n" } else { "\n" });
            }
            out.push_str("    ]\n  }");
            doc.raw("windows", out)
        }
    };
    doc.render()
}

fn chaos_num(v: &JsonValue) -> Option<f64> {
    match v {
        JsonValue::Num(s) => s.parse().ok(),
        _ => None,
    }
}

/// Validates a serialized `coflow-chaos/1` report:
///
/// * the schema tag matches and every policy in [`CHAOS_POLICIES`] has a
///   round — unless `"partial": true` (a SIGINT cut the run short), in
///   which case missing policies are tolerated and the summary says so;
/// * every round is bit-identical (a `false` means the crash-safety
///   contract is broken) with `epochs >= 1` and a non-empty snapshot when
///   any kill was performed;
/// * when the adversarial section is present, the recorded worst window is
///   consistent with its cells.
///
/// Returns a one-line summary on success.
pub fn validate_chaos_json(text: &str) -> Result<String, String> {
    let doc = json::parse(text).map_err(|e| format!("parse: {}", e))?;
    match doc.get("schema") {
        Some(JsonValue::Str(s)) if s == SCHEMA => {}
        other => {
            return Err(format!("unsupported schema {:?} (expected {})", other, SCHEMA))
        }
    }
    let Some(JsonValue::Arr(rounds)) = doc.get("rounds") else {
        return Err("missing 'rounds' array".to_string());
    };
    let mut seen = Vec::new();
    for r in rounds {
        let policy = match r.get("policy") {
            Some(JsonValue::Str(s)) => s.clone(),
            _ => return Err("round missing 'policy'".to_string()),
        };
        let num = |key: &str| -> Result<f64, String> {
            r.get(key)
                .and_then(chaos_num)
                .ok_or_else(|| format!("round {} missing '{}'", policy, key))
        };
        let kills = num("kills")?;
        let epochs = num("epochs")?;
        let snapshot_bytes = num("snapshot_bytes")?;
        num("objective")?;
        num("objective_bits")?;
        num("replans")?;
        match r.get("bit_identical") {
            Some(JsonValue::Bool(true)) => {}
            Some(JsonValue::Bool(false)) => {
                return Err(format!(
                    "round {}: interrupted run diverged from reference",
                    policy
                ))
            }
            _ => return Err(format!("round {} missing 'bit_identical'", policy)),
        }
        if epochs < 1.0 {
            return Err(format!("round {}: no decision epochs recorded", policy));
        }
        if kills > 0.0 && snapshot_bytes <= 2.0 {
            return Err(format!(
                "round {}: {} kills but the largest snapshot was {} bytes",
                policy, kills, snapshot_bytes
            ));
        }
        seen.push(policy);
    }
    let partial = matches!(doc.get("partial"), Some(JsonValue::Bool(true)));
    if !partial {
        for required in CHAOS_POLICIES {
            if !seen.iter().any(|s| s == required) {
                return Err(format!("policy '{}' missing from report", required));
            }
        }
    }
    let mut summary = format!("{} rounds, all bit-identical", seen.len());
    if partial {
        summary.push_str(", partial (interrupted)");
    }
    if let Some(w) = doc.get("windows") {
        if !matches!(w, JsonValue::Null) {
            let Some(JsonValue::Arr(cells)) = w.get("cells") else {
                return Err("windows missing 'cells' array".to_string());
            };
            if cells.is_empty() {
                return Err("windows section has no cells".to_string());
            }
            let worst = w
                .get("worst_inflation")
                .and_then(chaos_num)
                .ok_or("windows missing 'worst_inflation'")?;
            let max_cell = cells
                .iter()
                .map(|c| {
                    c.get("adversarial_inflation")
                        .and_then(chaos_num)
                        .ok_or("cell missing 'adversarial_inflation'".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?
                .into_iter()
                .fold(f64::MIN, f64::max);
            if (worst - max_cell).abs() > 1e-9 {
                return Err(format!(
                    "worst_inflation {} disagrees with cell maximum {}",
                    worst, max_cell
                ));
            }
            let _ = write!(summary, ", {} adversarial windows", cells.len());
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::arrivals_instance;

    fn tiny() -> Instance {
        arrivals_instance(8, 10, 3)
    }

    #[test]
    fn kill_harness_is_bit_identical_for_every_policy() {
        let inst = tiny();
        let report = run_chaos(
            &inst,
            &ChaosConfig {
                kills: 3,
                seed: 7,
                fault_rate: 0.3,
            },
        );
        assert_eq!(report.rounds.len(), CHAOS_POLICIES.len());
        for r in &report.rounds {
            assert!(r.bit_identical, "{} diverged", r.policy);
            assert!(r.epochs >= 1);
            if r.kills > 0 {
                assert!(r.snapshot_bytes > 2, "{}: empty snapshot", r.policy);
            }
        }
        let text = render_chaos_json(&report);
        let summary = validate_chaos_json(&text).expect("valid report");
        assert!(summary.contains("bit-identical"));
        // A diverged round must be rejected by the validator.
        let broken = text.replacen("\"bit_identical\": true", "\"bit_identical\": false", 1);
        assert!(validate_chaos_json(&broken).is_err());
        assert!(validate_chaos_json("{\"schema\": \"other/9\"}").is_err());
    }

    #[test]
    fn adversarial_search_reports_consistent_worst_window() {
        let inst = tiny();
        let windows = worst_window_search(&inst, 2, 6, 3, 11);
        assert_eq!(windows.cells.len(), 3);
        let max = windows
            .cells
            .iter()
            .map(|c| c.adversarial_inflation)
            .fold(f64::MIN, f64::max);
        assert!((windows.worst_inflation - max).abs() < 1e-9);
        // Targeted outages must actually hurt (or at least not help).
        assert!(windows.worst_inflation >= 1.0 - 1e-9);
        let report = ChaosReport {
            config: ChaosConfig::default(),
            rounds: run_chaos(
                &inst,
                &ChaosConfig {
                    kills: 1,
                    seed: 5,
                    fault_rate: 0.2,
                },
            )
            .rounds,
            windows: Some(windows),
            partial: false,
        };
        let text = render_chaos_json(&report);
        let summary = validate_chaos_json(&text).expect("valid report with windows");
        assert!(summary.contains("adversarial windows"));
    }

    #[test]
    fn partial_report_tolerates_missing_policies() {
        let inst = tiny();
        let full = run_chaos(
            &inst,
            &ChaosConfig {
                kills: 1,
                seed: 9,
                fault_rate: 0.2,
            },
        );
        // A report truncated after the first round (as a SIGINT between
        // rounds would leave it) validates only when flagged partial.
        let truncated = ChaosReport {
            config: full.config,
            rounds: full.rounds[..1].to_vec(),
            windows: None,
            partial: false,
        };
        let text = render_chaos_json(&truncated);
        assert!(validate_chaos_json(&text).is_err());
        let partial = ChaosReport {
            partial: true,
            ..truncated
        };
        let text = render_chaos_json(&partial);
        let summary = validate_chaos_json(&text).expect("partial report validates");
        assert!(summary.contains("partial (interrupted)"));
    }
}
