//! The 12-algorithm experiment grid of §4.1: orders {H_A, H_ρ, H_LP} ×
//! scheduling cases {(a) base, (b) backfill, (c) group, (d) group+backfill}.

use coflow::ordering::{compute_order, OrderRule};
use coflow::sched::{run_with_order, ScheduleOutcome};
use coflow::Instance;
use rayon::prelude::*;
use std::collections::HashMap;

/// The four scheduling-stage cases.
pub const CASES: [(bool, bool); 4] = [
    (false, false), // (a)
    (false, true),  // (b)
    (true, false),  // (c)
    (true, true),   // (d)
];

/// Case label as used in the paper.
pub fn case_label(grouping: bool, backfill: bool) -> &'static str {
    match (grouping, backfill) {
        (false, false) => "a",
        (false, true) => "b",
        (true, false) => "c",
        (true, true) => "d",
    }
}

/// One grid cell's result.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Ordering rule of the cell.
    pub order: OrderRule,
    /// Grouping flag.
    pub grouping: bool,
    /// Backfilling flag.
    pub backfill: bool,
    /// Total weighted completion time.
    pub objective: f64,
    /// Schedule makespan.
    pub makespan: u64,
}

/// Results for a full grid run, keyed by `(order, grouping, backfill)`.
pub type GridResults = HashMap<(OrderRule, bool, bool), CellResult>;

/// Runs the grid on `instance` for the given ordering rules.
///
/// Each order is computed once (the LP order is expensive) and the four
/// scheduling cases are evaluated in parallel with rayon.
pub fn run_grid(instance: &Instance, rules: &[OrderRule]) -> GridResults {
    let orders: Vec<(OrderRule, Vec<usize>)> = rules
        .iter()
        .map(|&rule| (rule, compute_order(instance, rule)))
        .collect();

    let cells: Vec<CellResult> = orders
        .par_iter()
        .flat_map(|(rule, order)| {
            CASES
                .par_iter()
                .map(move |&(grouping, backfill)| {
                    let out: ScheduleOutcome =
                        run_with_order(instance, order.clone(), grouping, backfill);
                    CellResult {
                        order: *rule,
                        grouping,
                        backfill,
                        objective: out.objective,
                        makespan: out.makespan(),
                    }
                })
                .collect::<Vec<_>>()
        })
        .collect();

    cells
        .into_iter()
        .map(|c| ((c.order, c.grouping, c.backfill), c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coflow_workloads::{generate_trace, TraceConfig};

    #[test]
    fn grid_covers_all_cells() {
        let inst = generate_trace(&TraceConfig::small(3));
        let rules = [OrderRule::Arrival, OrderRule::LoadOverWeight];
        let grid = run_grid(&inst, &rules);
        assert_eq!(grid.len(), 8);
        for rule in rules {
            for (g, b) in CASES {
                assert!(grid.contains_key(&(rule, g, b)));
            }
        }
    }

    #[test]
    fn grouping_and_backfilling_never_hurt_much() {
        // The qualitative §4.2 finding: case (d) <= case (a) for each order
        // (allowing a tiny tolerance for pathological ties).
        let inst = generate_trace(&TraceConfig::small(8));
        let grid = run_grid(&inst, &[OrderRule::LoadOverWeight]);
        let base = grid[&(OrderRule::LoadOverWeight, false, false)].objective;
        let best = grid[&(OrderRule::LoadOverWeight, true, true)].objective;
        assert!(
            best <= base * 1.02,
            "grouping+backfilling regressed: {} vs {}",
            best,
            base
        );
    }
}
