//! The 12-algorithm experiment grid of §4.1: orders {H_A, H_ρ, H_LP} ×
//! scheduling cases {(a) base, (b) backfill, (c) group, (d) group+backfill}.

use coflow::ordering::{compute_order, OrderRule};
use coflow::sched::resilient::run_resilient;
use coflow::sched::{run_with_order, AlgorithmSpec, ScheduleOutcome};
use coflow::Instance;
use coflow_lp::SimplexOptions;
use rayon::prelude::*;
use std::collections::HashMap;

/// The four scheduling-stage cases.
pub const CASES: [(bool, bool); 4] = [
    (false, false), // (a)
    (false, true),  // (b)
    (true, false),  // (c)
    (true, true),   // (d)
];

/// Case label as used in the paper.
pub fn case_label(grouping: bool, backfill: bool) -> &'static str {
    match (grouping, backfill) {
        (false, false) => "a",
        (false, true) => "b",
        (true, false) => "c",
        (true, true) => "d",
    }
}

/// One grid cell's result.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Ordering rule of the cell.
    pub order: OrderRule,
    /// Grouping flag.
    pub grouping: bool,
    /// Backfilling flag.
    pub backfill: bool,
    /// Total weighted completion time.
    pub objective: f64,
    /// Schedule makespan.
    pub makespan: u64,
}

/// Results for a full grid run, keyed by `(order, grouping, backfill)`.
pub type GridResults = HashMap<(OrderRule, bool, bool), CellResult>;

/// Runs the grid on `instance` for the given ordering rules.
///
/// Each order is computed once (the LP order is expensive) and the four
/// scheduling cases are evaluated in parallel with rayon.
pub fn run_grid(instance: &Instance, rules: &[OrderRule]) -> GridResults {
    let orders: Vec<(OrderRule, Vec<usize>)> = rules
        .iter()
        .map(|&rule| (rule, compute_order(instance, rule)))
        .collect();

    let cells: Vec<CellResult> = orders
        .par_iter()
        .flat_map(|(rule, order)| {
            CASES
                .par_iter()
                .map(move |&(grouping, backfill)| {
                    let out: ScheduleOutcome =
                        run_with_order(instance, order.clone(), grouping, backfill);
                    CellResult {
                        order: *rule,
                        grouping,
                        backfill,
                        objective: out.objective,
                        makespan: out.makespan(),
                    }
                })
                .collect::<Vec<_>>()
        })
        .collect();

    cells
        .into_iter()
        .map(|c| ((c.order, c.grouping, c.backfill), c))
        .collect()
}

/// One grid cell run through the fault-tolerant pipeline: records which
/// fallback tier actually produced the schedule.
#[derive(Clone, Debug)]
pub struct ResilientCellResult {
    /// Ordering rule the cell asked for.
    pub requested: OrderRule,
    /// Rule that actually produced the schedule.
    pub used: OrderRule,
    /// Fallback tier (0 = requested rule ran).
    pub tier: usize,
    /// Grouping flag.
    pub grouping: bool,
    /// Backfilling flag.
    pub backfill: bool,
    /// The schedule itself (kept for validation and inspection).
    pub outcome: ScheduleOutcome,
}

/// Results of a resilient grid run, keyed by `(requested, grouping,
/// backfill)`.
pub type ResilientGridResults = HashMap<(OrderRule, bool, bool), ResilientCellResult>;

/// Runs the grid through [`run_resilient`] so LP failures (budget
/// exhaustion, numerical trouble) degrade to heuristic orders instead of
/// panicking. `lp_opts` carries the solver budgets applied to LP-backed
/// cells.
pub fn run_grid_resilient(
    instance: &Instance,
    rules: &[OrderRule],
    lp_opts: &SimplexOptions,
) -> ResilientGridResults {
    let cells: Vec<ResilientCellResult> = rules
        .par_iter()
        .flat_map(|&rule| {
            CASES
                .par_iter()
                .map(move |&(grouping, backfill)| {
                    let spec = AlgorithmSpec {
                        order: rule,
                        grouping,
                        backfill,
                    };
                    let res = run_resilient(instance, &spec, lp_opts);
                    ResilientCellResult {
                        requested: rule,
                        used: res.used,
                        tier: res.tier,
                        grouping,
                        backfill,
                        outcome: res.outcome,
                    }
                })
                .collect::<Vec<_>>()
        })
        .collect();
    cells
        .into_iter()
        .map(|c| ((c.requested, c.grouping, c.backfill), c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coflow_netsim::validate_trace;
    use coflow_workloads::{generate_trace, TraceConfig};

    #[test]
    fn grid_covers_all_cells() {
        let inst = generate_trace(&TraceConfig::small(3));
        let rules = [OrderRule::Arrival, OrderRule::LoadOverWeight];
        let grid = run_grid(&inst, &rules);
        assert_eq!(grid.len(), 8);
        for rule in rules {
            for (g, b) in CASES {
                assert!(grid.contains_key(&(rule, g, b)));
            }
        }
    }

    #[test]
    fn starved_lp_degrades_every_cell_to_valid_schedules() {
        // Acceptance: with a 0-pivot LP budget all 12 grid algorithms still
        // produce netsim-validated schedules, with the fallback tier
        // recorded on each cell.
        let inst = generate_trace(&TraceConfig::small(5));
        let starved = SimplexOptions {
            max_iterations: 0,
            ..SimplexOptions::default()
        };
        let grid = run_grid_resilient(&inst, &OrderRule::PAPER_RULES, &starved);
        assert_eq!(grid.len(), 12);
        for ((rule, g, b), cell) in &grid {
            if *rule == OrderRule::LpBased {
                assert_eq!(cell.tier, 1, "H_LP cell ({}, {}) must degrade", g, b);
                assert_eq!(cell.used, OrderRule::LoadOverWeight);
            } else {
                assert_eq!(cell.tier, 0);
                assert_eq!(cell.used, *rule);
            }
            let times = validate_trace(
                &inst.demand_matrices(),
                &inst.releases(),
                &cell.outcome.trace,
            )
            .unwrap_or_else(|e| panic!("cell ({:?}, {}, {}) invalid: {}", rule, g, b, e));
            assert_eq!(times, cell.outcome.completions);
        }
    }

    #[test]
    fn healthy_lp_keeps_resilient_grid_at_tier_zero() {
        let inst = generate_trace(&TraceConfig::small(4));
        let grid = run_grid_resilient(&inst, &OrderRule::PAPER_RULES, &SimplexOptions::default());
        let plain = run_grid(&inst, &OrderRule::PAPER_RULES);
        for ((rule, g, b), cell) in &grid {
            assert_eq!(cell.tier, 0);
            let base = &plain[&(*rule, *g, *b)];
            assert!((cell.outcome.objective - base.objective).abs() < 1e-9);
        }
    }

    #[test]
    fn grouping_and_backfilling_never_hurt_much() {
        // The qualitative §4.2 finding: case (d) <= case (a) for each order
        // (allowing a tiny tolerance for pathological ties).
        let inst = generate_trace(&TraceConfig::small(8));
        let grid = run_grid(&inst, &[OrderRule::LoadOverWeight]);
        let base = grid[&(OrderRule::LoadOverWeight, false, false)].objective;
        let best = grid[&(OrderRule::LoadOverWeight, true, true)].objective;
        assert!(
            best <= base * 1.02,
            "grouping+backfilling regressed: {} vs {}",
            best,
            base
        );
    }
}
