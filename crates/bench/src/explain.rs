//! The `explain` pipeline: schedule forensics over the 12-cell experiment
//! grid.
//!
//! Solves the interval-indexed LP once, runs every grid cell (orders
//! {H_A, H_ρ, H_LP} × cases {a, b, c, d}), and diagnoses each schedule
//! against the relaxation ([`coflow::diagnostics`]): per-coflow `C_k/C̄_k`
//! attribution, wait-versus-service splits, unforced-idle shares, and the
//! anomaly detectors. Optionally repeats under an injected fault plan,
//! where the starvation and recovery-regression detectors become live.
//!
//! The report serializes as `coflow-diagnostics/1` JSON (schema documented
//! in DESIGN.md §4d, validated by [`validate_report`] and
//! `scripts/check-explain.sh`). The `H_LP` case (d) cell — the paper's
//! Algorithm 2 — carries the full per-coflow attribution table; every
//! other cell reports ratio quantiles and anomalies.

use coflow::diagnostics::{diagnose, diagnose_faulty, DiagnosticsConfig, ScheduleDiagnostics};
use coflow::ordering::{compute_order, OrderRule};
use coflow::sched::recovery::run_with_faults_strict;
use coflow::sched::run_with_order;
use coflow::relax::{try_solve_interval_lp_with, LpRelaxation};
use coflow::{AlgorithmSpec, Instance, DETERMINISTIC_RATIO};
use coflow_lp::SimplexOptions;
use coflow_netsim::FaultPlan;
use coflow_workloads::json::{self, fmt_f64, JsonValue};
use std::fmt::Write as _;

use crate::grid::{case_label, CASES};

/// Schema tag of the diagnostics report; bump on breaking layout changes.
pub const SCHEMA: &str = "coflow-diagnostics/1";

/// Slack below 1.0 tolerated in per-coflow ratios: completions land on
/// integer slots while `C̄_k` sums fractional grid points, so a coflow
/// finishing "on time" can round a hair under its fractional bound.
pub const RATIO_ROUNDING_SLACK: f64 = 1e-9;

/// One diagnosed grid cell.
#[derive(Clone, Debug)]
pub struct ExplainCell {
    /// Ordering rule.
    pub order: OrderRule,
    /// Grouping flag.
    pub grouping: bool,
    /// Backfilling flag.
    pub backfill: bool,
    /// Full diagnostics for the cell's schedule.
    pub diag: ScheduleDiagnostics,
}

/// The fault-injected section of the report (present when a fault rate
/// was requested).
#[derive(Clone, Debug)]
pub struct FaultsSection {
    /// Fault rate fed to [`FaultPlan::generate`].
    pub rate: f64,
    /// Injected events.
    pub events: usize,
    /// Planning epochs.
    pub replans: usize,
    /// Planned units stranded by fault windows.
    pub blocked_units: u64,
    /// Coflows cancelled before completion.
    pub cancelled: usize,
    /// Diagnostics of the faulty execution (against the clean baseline).
    pub diag: ScheduleDiagnostics,
}

/// A complete explain run.
#[derive(Clone, Debug)]
pub struct ExplainReport {
    /// Trace seed.
    pub seed: u64,
    /// Fabric size.
    pub ports: usize,
    /// Number of coflows.
    pub coflows: usize,
    /// LP objective — the lower bound every cell is attributed against.
    pub lp_lower_bound: f64,
    /// The 12 cells, rule-major.
    pub cells: Vec<ExplainCell>,
    /// Fault-injected section, when requested.
    pub faults: Option<FaultsSection>,
}

impl ExplainReport {
    /// The attribution cell: `H_LP` case (d), the paper's Algorithm 2.
    pub fn attribution_cell(&self) -> &ExplainCell {
        self.cells
            .iter()
            .find(|c| c.order == OrderRule::LpBased && c.grouping && c.backfill)
            .unwrap_or_else(|| unreachable!("grid always contains H_LP case d"))
    }

    /// Total anomaly firings across the clean grid cells.
    pub fn clean_anomalies(&self) -> usize {
        self.cells.iter().map(|c| c.diag.anomalies.len()).sum()
    }
}

/// Quantile of an unsorted sample by nearest-rank (q in [0, 1]).
pub fn quantile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Ratio quantiles `(p50, p95, max)` of one cell's per-coflow table.
pub fn ratio_quantiles(diag: &ScheduleDiagnostics) -> (f64, f64, f64) {
    let ratios: Vec<f64> = diag.per_coflow.iter().filter_map(|r| r.ratio).collect();
    let max = ratios.iter().copied().fold(0.0f64, f64::max);
    (quantile(&ratios, 0.5), quantile(&ratios, 0.95), max)
}

/// Runs the explain pipeline: LP once, 12 diagnosed cells, optional fault
/// section at `faults_rate` (uses `H_ρ` case (d) so replans stay cheap).
pub fn run_explain(
    instance: &Instance,
    seed: u64,
    lp_opts: &SimplexOptions,
    faults_rate: Option<f64>,
    cfg: &DiagnosticsConfig,
) -> ExplainReport {
    let _span = obs::span("bench.explain");
    let lp: LpRelaxation = match try_solve_interval_lp_with(instance, lp_opts) {
        Ok(lp) => lp,
        Err(e) => panic!("explain: interval LP failed: {}", e),
    };

    let mut cells = Vec::with_capacity(OrderRule::PAPER_RULES.len() * CASES.len());
    for &rule in &OrderRule::PAPER_RULES {
        let order = match rule {
            OrderRule::LpBased => lp.order.clone(),
            _ => compute_order(instance, rule),
        };
        for &(grouping, backfill) in &CASES {
            let outcome = run_with_order(instance, order.clone(), grouping, backfill);
            let diag = diagnose(instance, &outcome, &lp, cfg);
            cells.push(ExplainCell { order: rule, grouping, backfill, diag });
        }
    }

    let faults = faults_rate.map(|rate| {
        let spec = AlgorithmSpec {
            order: OrderRule::LoadOverWeight,
            grouping: true,
            backfill: true,
        };
        let baseline = run_with_order(
            instance,
            compute_order(instance, spec.order),
            spec.grouping,
            spec.backfill,
        );
        let horizon = baseline.makespan().max(1);
        let plan =
            FaultPlan::generate(instance.ports(), instance.len(), horizon, rate, seed);
        let out = run_with_faults_strict(instance, &spec, lp_opts, &plan);
        let cancelled = out.completions.iter().filter(|c| c.is_none()).count();
        let diag = diagnose_faulty(instance, &out, Some(&baseline), &lp, cfg);
        FaultsSection {
            rate,
            events: plan.events.len(),
            replans: out.replans,
            blocked_units: out.blocked_units,
            cancelled,
            diag,
        }
    });

    ExplainReport {
        seed,
        ports: instance.ports(),
        coflows: instance.len(),
        lp_lower_bound: lp.lower_bound,
        cells,
        faults,
    }
}

fn write_anomalies(out: &mut String, diag: &ScheduleDiagnostics, indent: &str) {
    out.push_str(indent);
    out.push_str("\"anomalies\": [");
    for (i, a) in diag.anomalies.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"detector\": {}, \"severity\": {}, \"coflow\": {}, \
             \"value\": {}, \"threshold\": {}, \"message\": {}}}",
            json::quote(a.detector.name()),
            json::quote(a.severity.name()),
            a.coflow.map_or("null".to_string(), |k| k.to_string()),
            fmt_f64(a.value),
            fmt_f64(a.threshold),
            json::quote(&a.message),
        );
    }
    out.push(']');
}

/// Serializes the report as `coflow-diagnostics/1` JSON. The exact byte
/// layout is pinned by the golden test, so the body sections are rendered
/// as raw fragments and only the header goes through [`JsonDoc`].
pub fn render_json(report: &ExplainReport) -> String {
    let mut out = String::from("[\n");
    for (idx, cell) in report.cells.iter().enumerate() {
        let d = &cell.diag;
        let (p50, p95, max) = ratio_quantiles(d);
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"order\": {},", json::quote(cell.order.name()));
        let _ = writeln!(
            out,
            "      \"case\": {},",
            json::quote(case_label(cell.grouping, cell.backfill))
        );
        let _ = writeln!(out, "      \"grouping\": {},", cell.grouping);
        let _ = writeln!(out, "      \"backfill\": {},", cell.backfill);
        let _ = writeln!(out, "      \"objective\": {},", fmt_f64(d.objective));
        let _ = writeln!(out, "      \"makespan\": {},", d.makespan);
        let _ = writeln!(
            out,
            "      \"approx_ratio\": {},",
            d.approx_ratio.map_or("null".to_string(), fmt_f64)
        );
        let _ = writeln!(
            out,
            "      \"unforced_idle_share\": {},",
            fmt_f64(if d.makespan > 0 {
                d.nonconserving_slots as f64 / d.makespan as f64
            } else {
                0.0
            })
        );
        let _ = writeln!(
            out,
            "      \"idle_while_pending_share\": {},",
            fmt_f64(if d.offered > 0 {
                d.unforced_idle as f64 / d.offered as f64
            } else {
                0.0
            })
        );
        let _ = writeln!(
            out,
            "      \"lp_inversion_fraction\": {},",
            fmt_f64(d.lp_inversion_fraction)
        );
        let _ = writeln!(
            out,
            "      \"committed_inversion_fraction\": {},",
            fmt_f64(d.committed_inversion_fraction)
        );
        let _ = writeln!(out, "      \"ratio_p50\": {},", fmt_f64(p50));
        let _ = writeln!(out, "      \"ratio_p95\": {},", fmt_f64(p95));
        let _ = writeln!(out, "      \"ratio_max\": {},", fmt_f64(max));
        write_anomalies(&mut out, d, "      ");
        out.push('\n');
        out.push_str(if idx + 1 < report.cells.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]");
    let cells = out;

    // Full per-coflow attribution for the paper's Algorithm 2 cell.
    let att = report.attribution_cell();
    let mut out = String::from("{\n");
    let _ = writeln!(out, "    \"order\": {},", json::quote(att.order.name()));
    let _ = writeln!(
        out,
        "    \"case\": {},",
        json::quote(case_label(att.grouping, att.backfill))
    );
    out.push_str("    \"per_coflow\": [\n");
    for (i, r) in att.diag.per_coflow.iter().enumerate() {
        let _ = write!(
            out,
            "      {{\"coflow\": {}, \"weight\": {}, \"release\": {}, \
             \"completion\": {}, \"lp_completion\": {}, \"ratio\": {}, \
             \"wait_slots\": {}, \"service_slots\": {}, \"blocked_slots\": {}, \
             \"preemptions\": {}, \"idle_share\": {}}}",
            r.coflow,
            fmt_f64(r.weight),
            r.release,
            r.completion.map_or("null".to_string(), |c| c.to_string()),
            fmt_f64(r.lp_completion),
            r.ratio.map_or("null".to_string(), fmt_f64),
            r.wait_slots,
            r.service_slots,
            r.blocked_slots,
            r.preemptions,
            fmt_f64(r.idle_share),
        );
        out.push_str(if i + 1 < att.diag.per_coflow.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("    ]\n  }");
    let attribution = out;

    let faults = match &report.faults {
        None => "null".to_string(),
        Some(f) => {
            let mut out = String::from("{\n");
            let _ = writeln!(out, "    \"rate\": {},", fmt_f64(f.rate));
            let _ = writeln!(out, "    \"events\": {},", f.events);
            let _ = writeln!(out, "    \"replans\": {},", f.replans);
            let _ = writeln!(out, "    \"blocked_units\": {},", f.blocked_units);
            let _ = writeln!(out, "    \"cancelled\": {},", f.cancelled);
            write_anomalies(&mut out, &f.diag, "    ");
            out.push_str("\n  }");
            out
        }
    };

    let mut doc = crate::sink::JsonDoc::new(SCHEMA);
    doc.num("seed", report.seed)
        .num("ports", report.ports)
        .num("coflows", report.coflows)
        .float("lp_lower_bound", report.lp_lower_bound)
        .raw("cells", cells)
        .raw("attribution", attribution)
        .raw("faults", faults);
    doc.render()
}

/// Plain-text rendering (stdout-friendly).
pub fn render_text(report: &ExplainReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== explain: {} ports, {} coflows, seed {} ==",
        report.ports, report.coflows, report.seed
    );
    let _ = writeln!(out, "LP lower bound = {:.0}", report.lp_lower_bound);
    let _ = writeln!(
        out,
        "{:<6} {:<4} {:>12} {:>7} {:>7} {:>7} {:>7} {:>7} {:>9}",
        "order", "case", "objective", "ratio", "nc%", "inv%", "r_p50", "r_p95", "anomalies"
    );
    for cell in &report.cells {
        let d = &cell.diag;
        let (p50, p95, _) = ratio_quantiles(d);
        let _ = writeln!(
            out,
            "{:<6} {:<4} {:>12.0} {:>7.3} {:>7.1} {:>7.1} {:>7.2} {:>7.2} {:>9}",
            cell.order.name(),
            case_label(cell.grouping, cell.backfill),
            d.objective,
            d.approx_ratio.unwrap_or(0.0),
            100.0 * d.nonconserving_slots as f64 / d.makespan.max(1) as f64,
            100.0 * d.committed_inversion_fraction,
            p50,
            p95,
            d.anomalies.len(),
        );
    }
    let att = report.attribution_cell();
    let (p50, p95, max) = ratio_quantiles(&att.diag);
    let _ = writeln!(
        out,
        "attribution ({} case {}): per-coflow C_k/C̄_k p50 {:.2}, p95 {:.2}, max {:.2} (bound {:.2})",
        att.order.name(),
        case_label(att.grouping, att.backfill),
        p50,
        p95,
        max,
        DETERMINISTIC_RATIO,
    );
    if let Some(f) = &report.faults {
        let _ = writeln!(
            out,
            "faults: rate {:.2}, {} events, {} replans, {} blocked units, {} cancelled, {} anomalies",
            f.rate,
            f.events,
            f.replans,
            f.blocked_units,
            f.cancelled,
            f.diag.anomalies.len(),
        );
        for a in &f.diag.anomalies {
            let _ = writeln!(out, "  [{}] {}: {}", a.severity.name(), a.detector.name(), a.message);
        }
    }
    out
}

fn num_f64(v: &JsonValue) -> Option<f64> {
    match v {
        JsonValue::Num(s) => s.parse().ok(),
        _ => None,
    }
}

fn num_u64(v: &JsonValue) -> Option<u64> {
    match v {
        JsonValue::Num(s) => s.parse().ok(),
        _ => None,
    }
}

/// Validation options for [`validate_report`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ValidateOpts {
    /// Require a faults section with at least one starvation firing.
    pub expect_starvation: bool,
}

/// Validates a serialized `coflow-diagnostics/1` report:
///
/// * the schema tag matches and all 12 grid cells are present;
/// * the attribution table covers every coflow, each ratio is ≥ 1 (up to
///   [`RATIO_ROUNDING_SLACK`]) and ≤ 67/3;
/// * a clean report (no faults section) carries zero anomalies;
/// * with [`ValidateOpts::expect_starvation`], the faults section exists
///   and fired the starvation detector at least once.
///
/// Returns a one-line summary on success.
pub fn validate_report(text: &str, opts: &ValidateOpts) -> Result<String, String> {
    let doc = json::parse(text).map_err(|e| format!("parse: {}", e))?;
    match doc.get("schema") {
        Some(JsonValue::Str(s)) if s == SCHEMA => {}
        other => {
            return Err(format!(
                "unsupported schema {:?} (expected {})",
                other, SCHEMA
            ))
        }
    }
    let coflows = doc
        .get("coflows")
        .and_then(num_u64)
        .ok_or("missing 'coflows'")? as usize;
    let Some(JsonValue::Arr(cells)) = doc.get("cells") else {
        return Err("missing 'cells' array".to_string());
    };
    if cells.len() != 12 {
        return Err(format!("expected 12 grid cells, found {}", cells.len()));
    }
    let mut seen = Vec::new();
    let mut clean_anomalies = 0usize;
    let mut fired = Vec::new();
    for cell in cells {
        let order = match cell.get("order") {
            Some(JsonValue::Str(s)) => s.clone(),
            _ => return Err("cell missing 'order'".to_string()),
        };
        let case = match cell.get("case") {
            Some(JsonValue::Str(s)) => s.clone(),
            _ => return Err("cell missing 'case'".to_string()),
        };
        for key in ["objective", "approx_ratio", "ratio_p50", "ratio_p95", "ratio_max"] {
            if cell.get(key).is_none() {
                return Err(format!("cell {}/{} missing '{}'", order, case, key));
            }
        }
        let Some(JsonValue::Arr(anoms)) = cell.get("anomalies") else {
            return Err(format!("cell {}/{} missing 'anomalies'", order, case));
        };
        clean_anomalies += anoms.len();
        for a in anoms {
            if let Some(JsonValue::Str(d)) = a.get("detector") {
                let value = match a.get("value") {
                    Some(JsonValue::Num(v)) => v.clone(),
                    _ => "?".to_string(),
                };
                fired.push(format!("{}/{}:{}={}", order, case, d, value));
            }
        }
        seen.push((order, case));
    }
    for order in ["H_A", "H_rho", "H_LP"] {
        for case in ["a", "b", "c", "d"] {
            if !seen.iter().any(|(o, c)| o == order && c == case) {
                return Err(format!("grid cell {}/{} missing", order, case));
            }
        }
    }

    let att = doc.get("attribution").ok_or("missing 'attribution'")?;
    let Some(JsonValue::Arr(rows)) = att.get("per_coflow") else {
        return Err("attribution missing 'per_coflow' array".to_string());
    };
    if rows.len() != coflows {
        return Err(format!(
            "attribution covers {} coflows, instance has {}",
            rows.len(),
            coflows
        ));
    }
    let mut max_ratio = 0.0f64;
    for row in rows {
        let k = row.get("coflow").and_then(num_u64).ok_or("row missing 'coflow'")?;
        let ratio = row
            .get("ratio")
            .and_then(num_f64)
            .ok_or_else(|| format!("coflow {}: missing per-coflow ratio", k))?;
        if ratio < 1.0 - RATIO_ROUNDING_SLACK {
            return Err(format!(
                "coflow {}: ratio {} below the LP lower bound",
                k, ratio
            ));
        }
        if ratio > DETERMINISTIC_RATIO + 1e-9 {
            return Err(format!(
                "coflow {}: ratio {} exceeds the 67/3 guarantee",
                k, ratio
            ));
        }
        max_ratio = max_ratio.max(ratio);
    }

    let faults = doc.get("faults").ok_or("missing 'faults'")?;
    let starvation_firings = match faults {
        JsonValue::Null => {
            if clean_anomalies > 0 {
                return Err(format!(
                    "clean grid fired {} anomalies (expected 0): {}",
                    clean_anomalies,
                    fired.join(", ")
                ));
            }
            0
        }
        _ => {
            let Some(JsonValue::Arr(anoms)) = faults.get("anomalies") else {
                return Err("faults section missing 'anomalies'".to_string());
            };
            anoms
                .iter()
                .filter(|a| {
                    matches!(a.get("detector"), Some(JsonValue::Str(s)) if s == "starvation")
                })
                .count()
        }
    };
    if opts.expect_starvation && starvation_firings == 0 {
        return Err("expected at least one starvation firing, found none".to_string());
    }

    Ok(format!(
        "valid {}: 12 cells, {} coflows attributed, max ratio {:.3} <= {:.3}, \
         {} clean anomalies, {} starvation firings",
        SCHEMA, coflows, max_ratio, DETERMINISTIC_RATIO, clean_anomalies, starvation_firings
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use coflow_workloads::{generate_trace, TraceConfig};

    fn tiny_report(faults: Option<f64>) -> ExplainReport {
        let inst = generate_trace(&TraceConfig::small(7));
        run_explain(
            &inst,
            7,
            &SimplexOptions::default(),
            faults,
            &DiagnosticsConfig::default(),
        )
    }

    #[test]
    fn explain_covers_the_grid_and_validates() {
        let report = tiny_report(None);
        assert_eq!(report.cells.len(), 12);
        let rendered = render_json(&report);
        let summary = validate_report(&rendered, &ValidateOpts::default())
            .expect("clean tiny report must validate");
        assert!(summary.contains("12 cells"));
        assert!(render_text(&report).contains("attribution"));
    }

    #[test]
    fn attribution_ratios_respect_the_theorem() {
        let report = tiny_report(None);
        let att = report.attribution_cell();
        for r in &att.diag.per_coflow {
            let ratio = r.ratio.expect("clean run attributes every coflow");
            assert!(ratio >= 1.0 - RATIO_ROUNDING_SLACK, "ratio {} < 1", ratio);
            assert!(ratio <= DETERMINISTIC_RATIO + 1e-9, "ratio {} > 67/3", ratio);
        }
    }

    #[test]
    fn faulty_report_round_trips() {
        let report = tiny_report(Some(0.5));
        let f = report.faults.as_ref().expect("faults section requested");
        assert!(f.rate > 0.0);
        let rendered = render_json(&report);
        // Faulty reports stay schema-valid (starvation may or may not have
        // fired at this tiny scale; don't require it here).
        validate_report(&rendered, &ValidateOpts::default())
            .expect("faulty report must stay schema-valid");
    }

    #[test]
    fn validator_rejects_broken_reports() {
        let report = tiny_report(None);
        let rendered = render_json(&report);
        assert!(validate_report("{\"schema\": \"other/1\"}", &ValidateOpts::default()).is_err());
        // Tampering a ratio above the bound must fail validation.
        let broken = rendered.replacen("\"ratio\": 1", "\"ratio\": 99", 1);
        if broken != rendered {
            assert!(validate_report(&broken, &ValidateOpts::default()).is_err());
        }
        // Expecting starvation on a clean report must fail.
        let opts = ValidateOpts { expect_starvation: true };
        assert!(validate_report(&rendered, &opts).is_err());
    }

    #[test]
    fn quantiles_are_nearest_rank() {
        let v = [3.0, 1.0, 2.0, 4.0];
        assert_eq!(quantile(&v, 0.5), 2.0);
        assert_eq!(quantile(&v, 0.95), 4.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }
}
