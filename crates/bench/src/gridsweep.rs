//! Grid-refinement sweep (extension answering an open question from §4.2).
//!
//! The paper notes: "we should systematically measure the benefit of the
//! time-indexed versus the interval-indexed linear program." Refining the
//! geometric grid ratio interpolates between the two: ratio 2 is the
//! paper's (LP); ratio → 1 approaches (LP-EXP). This sweep measures, per
//! ratio, (i) the lower bound, (ii) the cost of the schedule driven by the
//! resulting ordering, and (iii) the LP size/time — quantifying how much of
//! LP-EXP's tightness cheap refinements recover.

use coflow::intervals::GeometricGrid;
use coflow::relax::{solve_time_indexed_lp, solve_with_grid};
use coflow::sched::run_with_order;
use coflow::Instance;
use std::time::Instant;

/// One row of the sweep.
#[derive(Clone, Debug)]
pub struct GridSweepRow {
    /// Geometric ratio of the grid (2.0 = the paper's LP).
    pub ratio: f64,
    /// Lower bound from the LP over this grid.
    pub lower_bound: f64,
    /// Cost of Algorithm 2 driven by this grid's ordering
    /// (grouping + backfilling).
    pub schedule_cost: f64,
    /// Simplex pivots.
    pub iterations: usize,
    /// Wall time of the LP solve in milliseconds.
    pub solve_ms: f64,
}

/// Full sweep result, with the LP-EXP limit for reference.
#[derive(Clone, Debug)]
pub struct GridSweep {
    /// Rows in decreasing-ratio order.
    pub rows: Vec<GridSweepRow>,
    /// The (LP-EXP) bound — the refinement limit.
    pub lp_exp_bound: f64,
}

/// Runs the sweep on `instance` for the given ratios.
pub fn run_gridsweep(instance: &Instance, ratios: &[f64]) -> GridSweep {
    let horizon = instance.naive_horizon();
    let rows = ratios
        .iter()
        .map(|&ratio| {
            let grid = GeometricGrid::scaled(horizon, 1.0, ratio);
            let t0 = Instant::now();
            let relax = solve_with_grid(instance, &grid);
            let solve_ms = t0.elapsed().as_secs_f64() * 1e3;
            let out = run_with_order(instance, relax.order.clone(), true, true);
            GridSweepRow {
                ratio,
                lower_bound: relax.lower_bound,
                schedule_cost: out.objective,
                iterations: relax.iterations,
                solve_ms,
            }
        })
        .collect();
    let lp_exp_bound = solve_time_indexed_lp(instance).lower_bound;
    GridSweep { rows, lp_exp_bound }
}

/// Renders the sweep as a text table.
pub fn render_gridsweep(sweep: &GridSweep) -> String {
    let mut out = String::from(
        "Grid-refinement sweep: interval-indexed LP -> time-indexed limit\n\
         \x20 ratio |  lower bound | bound/LP-EXP | schedule cost | pivots | solve ms\n",
    );
    for r in &sweep.rows {
        out.push_str(&format!(
            "  {:>5.2} | {:>12.1} | {:>12.4} | {:>13.1} | {:>6} | {:>8.1}\n",
            r.ratio,
            r.lower_bound,
            r.lower_bound / sweep.lp_exp_bound,
            r.schedule_cost,
            r.iterations,
            r.solve_ms
        ));
    }
    out.push_str(&format!(
        "  limit | {:>12.1} |       1.0000 | (LP-EXP)\n",
        sweep.lp_exp_bound
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use coflow_workloads::{assign_weights, generate_trace, TraceConfig, WeightScheme};

    #[test]
    fn refinement_is_monotone_and_bounded_by_lpexp() {
        let cfg = TraceConfig {
            ports: 8,
            num_coflows: 8,
            max_flow_size: 6,
            flow_size_mu: 0.7,
            flow_size_sigma: 0.5,
            ..TraceConfig::small(21)
        };
        let inst = assign_weights(
            &generate_trace(&cfg),
            WeightScheme::RandomPermutation { seed: 3 },
        );
        let sweep = run_gridsweep(&inst, &[2.0, 1.5, 1.2]);
        for pair in sweep.rows.windows(2) {
            assert!(
                pair[0].lower_bound <= pair[1].lower_bound + 1e-7,
                "refinement loosened the bound"
            );
        }
        for row in &sweep.rows {
            assert!(row.lower_bound <= sweep.lp_exp_bound + 1e-7);
            assert!(sweep.lp_exp_bound <= row.schedule_cost + 1e-6);
        }
    }
}
