//! Pinned-objective regression gate for the scheduling engine.
//!
//! The engine refactor promised bit-identical schedules: every grid cell,
//! the online ρ/w scheduler (fresh and stale priorities), the greedy
//! baseline, and the fault-injected combinations must keep producing the
//! exact objectives they produced when the pins were written. This module
//! computes those objectives on a deterministic arrivals instance, renders
//! them as `coflow-pins/1` JSON (`BENCH_pins.json`), and compares a fresh
//! run against the committed file — objectives are matched on their f64
//! **bit patterns**, so even a last-ulp drift fails the gate.
//!
//! The report also records the wall-clock of the engine-driven section
//! (online + greedy + fault combos, the paths the old hand loops served);
//! `scripts/check-perf.sh` uses it as a no-slower-than-baseline overhead
//! gate with a generous tolerance, mirroring the per-stage profile gate.

use crate::arrivals::arrivals_instance;
use crate::grid::{case_label, run_grid};
use crate::table1::ORDERS;
use coflow::sched::recovery::{run_with_faults_strict, verify_faulty_outcome};
use coflow::{
    compute_order, run_greedy, run_greedy_with_faults, run_im_purohit_with_faults,
    run_online_opts, run_online_with_faults, run_policy, run_shafiee_ghaderi_with_faults,
    AlgorithmSpec, ImPurohitPolicy, Instance, OnlineOptions, OrderRule,
};
use coflow_lp::SimplexOptions;
use coflow_netsim::FaultPlan;
use coflow_workloads::json::{self, fmt_f64, JsonValue};
use std::fmt::Write as _;
use std::time::Instant;

/// Schema tag of the pin file; bump on layout changes.
pub const SCHEMA: &str = "coflow-pins/1";

/// Fault rate of the pinned fault-injected cells.
pub const FAULT_RATE: f64 = 0.3;

/// Fault rate of the successor-policy fault cells (`faults20/*`) — the
/// tournament's shared rate. The plan stream is decoupled from the 0.3
/// plan by [`FAULT20_SEED_OFFSET`].
pub const FAULT_RATE_20: f64 = 0.2;

/// Seed offset of the `faults20/*` plan stream relative to the pin seed.
pub const FAULT20_SEED_OFFSET: u64 = 20;

/// Absolute wall-clock slack of the engine-overhead gate: differences
/// below this never fail, whatever the ratio (same reasoning as the
/// profile gate's noise floor, but the engine section is much shorter).
pub const ENGINE_FLOOR_MS: f64 = 50.0;

/// One pinned measurement.
#[derive(Clone, Debug)]
pub struct Pin {
    /// Stable label, e.g. `grid/H_LP/d`, `online/fixed`, `faults/greedy`.
    pub label: String,
    /// Total weighted completion time (over survivors for fault cells).
    pub objective: f64,
    /// Schedule makespan (executed-trace makespan for fault cells).
    pub makespan: u64,
}

/// A full pin run.
#[derive(Clone, Debug)]
pub struct PinReport {
    /// Instance seed.
    pub seed: u64,
    /// Wall-clock of the engine-driven section (online/greedy/faults), ms.
    pub engine_ms: f64,
    /// Every pinned cell, in a stable order.
    pub pins: Vec<Pin>,
}

/// Computes every pin on `instance` (must have release dates for the
/// online cells to be meaningful). Fault-injected outcomes are verified
/// before pinning; an invalid schedule panics — that is an engine bug.
pub fn collect_pins_on(instance: &Instance, seed: u64) -> PinReport {
    let mut pins = Vec::new();

    // The 12-cell grid (orders × cases), all executed by the engine's
    // BvN batch policy.
    let grid = run_grid(instance, &ORDERS);
    for &rule in &ORDERS {
        for &(grouping, backfill) in &crate::grid::CASES {
            let cell = &grid[&(rule, grouping, backfill)];
            pins.push(Pin {
                label: format!("grid/{}/{}", rule.name(), case_label(grouping, backfill)),
                objective: cell.objective,
                makespan: cell.makespan,
            });
        }
    }

    // Engine-only section: the policies the old hand loops used to serve,
    // plus the fault combinations that did not exist before the engine.
    let start = Instant::now();
    let order = compute_order(instance, OrderRule::LoadOverWeight);
    let online_fixed = run_online_opts(instance, OnlineOptions::default());
    let online_stale = run_online_opts(instance, OnlineOptions::legacy());
    let greedy = run_greedy(instance, order.clone());
    pins.push(Pin {
        label: "online/fixed".to_string(),
        objective: online_fixed.objective,
        makespan: online_fixed.makespan(),
    });
    pins.push(Pin {
        label: "online/stale".to_string(),
        objective: online_stale.objective,
        makespan: online_stale.makespan(),
    });
    pins.push(Pin {
        label: "greedy".to_string(),
        objective: greedy.objective,
        makespan: greedy.makespan(),
    });

    // Successor-paper policies (registry names): Shafiee–Ghaderi on the
    // H_pd primal-dual permutation, Im–Purohit on the LP order. The LP
    // order is solved once and shared with the fault cell below.
    let sg = coflow::run_shafiee_ghaderi(instance);
    let ip_order = compute_order(instance, OrderRule::LpBased);
    let ip = {
        let mut policy = ImPurohitPolicy::with_order(instance, ip_order.clone());
        match run_policy(instance, &mut policy) {
            Ok(out) => out,
            Err(e) => panic!("pins: im-purohit hit an engine bug: {}", e),
        }
    };
    pins.push(Pin {
        label: "shafiee-ghaderi".to_string(),
        objective: sg.objective,
        makespan: sg.makespan(),
    });
    pins.push(Pin {
        label: "im-purohit".to_string(),
        objective: ip.objective,
        makespan: ip.makespan(),
    });

    let horizon = online_fixed
        .makespan()
        .max(online_stale.makespan())
        .max(greedy.makespan())
        .max(1);
    let plan = FaultPlan::generate(instance.ports(), instance.len(), horizon, FAULT_RATE, seed);
    let spec = AlgorithmSpec {
        order: OrderRule::LoadOverWeight,
        grouping: true,
        backfill: true,
    };
    let resilient = run_with_faults_strict(instance, &spec, &SimplexOptions::default(), &plan);
    let online_faulty = match run_online_with_faults(instance, OnlineOptions::default(), &plan) {
        Ok(out) => out,
        Err(e) => panic!("pins: online under faults hit an engine bug: {}", e),
    };
    let greedy_faulty = match run_greedy_with_faults(instance, order, &plan) {
        Ok(out) => out,
        Err(e) => panic!("pins: greedy under faults hit an engine bug: {}", e),
    };
    for (label, out) in [
        ("faults/resilient", &resilient),
        ("faults/online", &online_faulty),
        ("faults/greedy", &greedy_faulty),
    ] {
        if let Err(e) = verify_faulty_outcome(instance, &plan, out) {
            panic!("pins: {} produced an invalid schedule: {}", label, e);
        }
        pins.push(Pin {
            label: label.to_string(),
            objective: out.objective,
            makespan: out.executed.makespan(),
        });
    }

    // The tournament's shared fault rate (0.20) for the successor
    // policies, on its own deterministic plan stream.
    let plan20 = pin_fault_plan_20(instance, seed, &[&online_fixed, &online_stale, &greedy, &sg, &ip]);
    let sg_faulty = match run_shafiee_ghaderi_with_faults(instance, &plan20) {
        Ok(out) => out,
        Err(e) => panic!("pins: shafiee-ghaderi under faults hit an engine bug: {}", e),
    };
    let ip_faulty = match run_im_purohit_with_faults(instance, &plan20) {
        Ok(out) => out,
        Err(e) => panic!("pins: im-purohit under faults hit an engine bug: {}", e),
    };
    for (label, out) in [
        ("faults20/shafiee-ghaderi", &sg_faulty),
        ("faults20/im-purohit", &ip_faulty),
    ] {
        if let Err(e) = verify_faulty_outcome(instance, &plan20, out) {
            panic!("pins: {} produced an invalid schedule: {}", label, e);
        }
        pins.push(Pin {
            label: label.to_string(),
            objective: out.objective,
            makespan: out.executed.makespan(),
        });
    }
    let engine_ms = start.elapsed().as_secs_f64() * 1e3;

    PinReport { seed, engine_ms, pins }
}

/// Computes the pins on the canonical arrivals instance (24 ports, 36
/// coflows, Poisson arrivals) — the configuration `BENCH_pins.json` was
/// written from.
pub fn collect_pins(seed: u64) -> PinReport {
    collect_pins_on(&arrivals_instance(24, 36, seed), seed)
}

/// Derives the `faults20/*` plan: rate [`FAULT_RATE_20`], horizon the max
/// clean makespan over the engine policies pinned before it, seed offset
/// [`FAULT20_SEED_OFFSET`]. Public so the checkpoint differential tests
/// reconstruct the exact plan a pin was measured under.
pub fn pin_fault_plan_20(
    instance: &Instance,
    seed: u64,
    clean: &[&coflow::ScheduleOutcome],
) -> FaultPlan {
    let horizon = clean.iter().map(|o| o.makespan()).max().unwrap_or(1).max(1);
    FaultPlan::generate(
        instance.ports(),
        instance.len(),
        horizon,
        FAULT_RATE_20,
        seed.wrapping_add(FAULT20_SEED_OFFSET),
    )
}

/// Serializes a pin run as `coflow-pins/1` JSON. Objectives are written
/// both as shortest-round-trip decimals and as raw bit patterns; the
/// comparison uses the bits.
pub fn render_pins_json(report: &PinReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {},", json::quote(SCHEMA));
    let _ = writeln!(out, "  \"seed\": {},", report.seed);
    let _ = writeln!(out, "  \"engine_ms\": {},", fmt_f64(report.engine_ms));
    out.push_str("  \"pins\": [\n");
    for (i, pin) in report.pins.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"label\": {}, \"objective\": {}, \"objective_bits\": {}, \"makespan\": {}}}",
            json::quote(&pin.label),
            fmt_f64(pin.objective),
            pin.objective.to_bits(),
            pin.makespan,
        );
        out.push_str(if i + 1 < report.pins.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn num_f64(v: &JsonValue) -> Option<f64> {
    match v {
        JsonValue::Num(s) => s.parse().ok(),
        _ => None,
    }
}

fn num_u64(v: &JsonValue) -> Option<u64> {
    match v {
        JsonValue::Num(s) => s.parse().ok(),
        _ => None,
    }
}

/// Parses a serialized pin file back into a [`PinReport`] (objectives are
/// reconstructed from the bit patterns, so the round trip is exact).
pub fn parse_pins(text: &str) -> Result<PinReport, String> {
    let doc = json::parse(text).map_err(|e| format!("parse: {}", e))?;
    match doc.get("schema") {
        Some(JsonValue::Str(s)) if s == SCHEMA => {}
        other => {
            return Err(format!("unsupported schema {:?} (expected {})", other, SCHEMA))
        }
    }
    let seed = doc.get("seed").and_then(num_u64).ok_or("missing 'seed'")?;
    let engine_ms = doc
        .get("engine_ms")
        .and_then(num_f64)
        .ok_or("missing 'engine_ms'")?;
    let Some(JsonValue::Arr(rows)) = doc.get("pins") else {
        return Err("missing 'pins' array".to_string());
    };
    let mut pins = Vec::with_capacity(rows.len());
    for row in rows {
        let label = match row.get("label") {
            Some(JsonValue::Str(s)) => s.clone(),
            _ => return Err("pin missing 'label'".to_string()),
        };
        let bits = row
            .get("objective_bits")
            .and_then(num_u64)
            .ok_or_else(|| format!("pin {} missing 'objective_bits'", label))?;
        let makespan = row
            .get("makespan")
            .and_then(num_u64)
            .ok_or_else(|| format!("pin {} missing 'makespan'", label))?;
        pins.push(Pin {
            label,
            objective: f64::from_bits(bits),
            makespan,
        });
    }
    if pins.is_empty() {
        return Err("pin file has no pins".to_string());
    }
    Ok(PinReport { seed, engine_ms, pins })
}

/// Compares a fresh run against a committed pin file.
///
/// * every baseline pin must exist in the current run (and vice versa);
/// * objectives must match **bit for bit** and makespans exactly — the
///   engine promised bit-identical schedules, so any drift is a bug;
/// * the engine section must not be slower than the baseline by more than
///   `time_tolerance` (fractional) past [`ENGINE_FLOOR_MS`].
///
/// Returns a one-line summary on success, the first violation otherwise.
pub fn compare_pins(
    baseline: &PinReport,
    current: &PinReport,
    time_tolerance: f64,
) -> Result<String, String> {
    if baseline.seed != current.seed {
        return Err(format!(
            "seed mismatch: baseline {} vs current {}",
            baseline.seed, current.seed
        ));
    }
    for pin in &baseline.pins {
        let Some(cur) = current.pins.iter().find(|p| p.label == pin.label) else {
            return Err(format!("pin '{}' missing from current run", pin.label));
        };
        if cur.objective.to_bits() != pin.objective.to_bits() {
            return Err(format!(
                "pin '{}': objective drifted from {} (bits {:#x}) to {} (bits {:#x})",
                pin.label,
                pin.objective,
                pin.objective.to_bits(),
                cur.objective,
                cur.objective.to_bits(),
            ));
        }
        if cur.makespan != pin.makespan {
            return Err(format!(
                "pin '{}': makespan drifted from {} to {}",
                pin.label, pin.makespan, cur.makespan
            ));
        }
    }
    for pin in &current.pins {
        if !baseline.pins.iter().any(|p| p.label == pin.label) {
            return Err(format!("pin '{}' not present in baseline", pin.label));
        }
    }
    let budget = baseline.engine_ms * (1.0 + time_tolerance) + ENGINE_FLOOR_MS;
    if current.engine_ms > budget {
        return Err(format!(
            "engine section regressed: {:.1} ms vs baseline {:.1} ms (budget {:.1} ms)",
            current.engine_ms, baseline.engine_ms, budget
        ));
    }
    Ok(format!(
        "{} pins bit-identical, engine section {:.1} ms (baseline {:.1} ms)",
        baseline.pins.len(),
        current.engine_ms,
        baseline.engine_ms
    ))
}

/// Plain-text table of a pin run.
pub fn render_pins(report: &PinReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== pins: seed {}, engine section {:.1} ms ==",
        report.seed, report.engine_ms
    );
    let _ = writeln!(out, "{:<22} {:>14} {:>9}", "cell", "objective", "makespan");
    for pin in &report.pins {
        let _ = writeln!(
            out,
            "{:<22} {:>14.1} {:>9}",
            pin.label, pin.objective, pin.makespan
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> PinReport {
        collect_pins_on(&arrivals_instance(8, 10, 3), 3)
    }

    #[test]
    fn pins_cover_grid_policies_and_fault_combos() {
        let report = tiny_report();
        let labels: Vec<&str> = report.pins.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(
            report.pins.len(),
            22,
            "12 grid + 5 policies + 3 fault cells + 2 faults20 cells"
        );
        for required in [
            "grid/H_LP/d",
            "grid/H_A/a",
            "online/fixed",
            "online/stale",
            "greedy",
            "shafiee-ghaderi",
            "im-purohit",
            "faults/resilient",
            "faults/online",
            "faults/greedy",
            "faults20/shafiee-ghaderi",
            "faults20/im-purohit",
        ] {
            assert!(labels.contains(&required), "missing pin {}", required);
        }
        assert!(report.engine_ms > 0.0);
    }

    #[test]
    fn pin_json_round_trips_exactly_and_self_compares_clean() {
        let report = tiny_report();
        let parsed = parse_pins(&render_pins_json(&report)).expect("round trip");
        assert_eq!(parsed.pins.len(), report.pins.len());
        for (a, b) in report.pins.iter().zip(&parsed.pins) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.objective.to_bits(), b.objective.to_bits());
            assert_eq!(a.makespan, b.makespan);
        }
        let summary = compare_pins(&parsed, &report, 1.0).expect("self-compare");
        assert!(summary.contains("bit-identical"));
    }

    #[test]
    fn comparison_catches_last_ulp_drift_and_slow_engines() {
        let report = tiny_report();
        let mut drifted = report.clone();
        drifted.pins[0].objective =
            f64::from_bits(drifted.pins[0].objective.to_bits() + 1);
        assert!(compare_pins(&report, &drifted, 1.0).is_err(), "1-ulp drift must fail");

        let mut slow = report.clone();
        slow.engine_ms = report.engine_ms * 3.0 + ENGINE_FLOOR_MS * 2.0;
        assert!(compare_pins(&report, &slow, 1.0).is_err(), "slow engine must fail");

        let mut renamed = report.clone();
        renamed.pins[0].label = "grid/H_X/z".to_string();
        assert!(compare_pins(&report, &renamed, 1.0).is_err(), "label drift must fail");
    }

    #[test]
    fn parser_rejects_foreign_schemas() {
        assert!(parse_pins("{\"schema\": \"other/9\", \"pins\": []}").is_err());
    }
}
