//! The N-algorithm tournament: every registry policy raced on the shared
//! grid instance, under faults, and through one windowed scale cell
//! (`BENCH_tournament.json`, schema `coflow-tournament/1`).
//!
//! Three rounds, one report:
//!
//! 1. **clean** — each selected [`PolicyEntry`] runs the pinned arrivals
//!    instance through the unified engine (a quiet fault plan, which is
//!    bit-identical to the clean run and lets the one driver accept the
//!    `Execute`-emitting resilient planner too). Per policy: TWCT, its
//!    ratio against the interval-LP lower bound (Lemma 1) — which the
//!    gate checks against the paper bound the registry entry carries
//!    (67/3 for Algorithm 2, 5 for Shafiee–Ghaderi, 4 for Im–Purohit) —
//!    and wall-clock;
//! 2. **faults** — one shared [`FaultPlan`] at rate
//!    [`TOURNAMENT_FAULT_RATE`] replayed against every fault-capable
//!    policy; inflation is measured over each plan's surviving coflows
//!    exactly as in [`crate::faults`]. Open-loop policies (`bvn-batch`)
//!    sit this round out and say so in the report;
//! 3. **scale** — one windowed streaming cell ([`SCALE_PORTS`] ports,
//!    [`SCALE_COFLOWS`] coflows) through the [`SparseExecutor`]: each
//!    policy maps to its windowed ordering analog (`windowed-lp` for the
//!    LP-ordered policies, `rho` Smith order for the online/greedy
//!    family, a sparse port primal–dual for Shafiee–Ghaderi). Each
//!    distinct mode is streamed once and its numbers shared by the
//!    policies that map to it — the report says which mode a row ran.
//!
//! `scripts/check-tournament.sh` gates a fresh run against the committed
//! golden with [`compare_tournament`]: objectives and ratios bit-exact in
//! both directions, wall-clock within a fractional tolerance plus the
//! [`ABS_FLOOR_MS`] noise floor.

use crate::pins::{FAULT20_SEED_OFFSET, FAULT_RATE_20};
use crate::profile::ABS_FLOOR_MS;
use crate::scale::{loads_of, smith_order, SparseExecutor};
use coflow::bounds::interval_lp_bound;
use coflow::{
    run_policy_with_faults, try_solve_windowed_sparse, verify_faulty_outcome, FaultyOutcome,
    Instance, PolicyEntry, PolicyRegistry, SparseCoflowLoads,
};
use coflow_lp::SimplexOptions;
use coflow_netsim::FaultPlan;
use coflow_workloads::json::{self, fmt_f64, JsonValue};
use coflow_workloads::{CoflowStream, SparseCoflow, StreamConfig};
use std::fmt::Write as _;
use std::time::Instant;

/// Schema tag of the tournament report; bump on breaking layout changes.
pub const SCHEMA: &str = "coflow-tournament/1";

/// Fault rate of the shared tournament plan (the pinned `faults20` rate).
pub const TOURNAMENT_FAULT_RATE: f64 = FAULT_RATE_20;

/// Fabric of the windowed scale round. At or below
/// [`crate::scale::LP_PORT_LIMIT`], so the LP-ordered policies get their
/// natural windowed-LP mode.
pub const SCALE_PORTS: usize = 96;

/// Coflows streamed through the scale round (15 windows of 64).
pub const SCALE_COFLOWS: usize = 960;

/// Admission window of the scale round.
pub const SCALE_WINDOW: usize = 64;

/// Fault-round numbers of one policy (`None` on the row when the policy
/// cannot run under live faults).
#[derive(Clone, Debug)]
pub struct TournamentFault {
    /// `Σ w_k C_k` over surviving coflows, under the shared plan.
    pub objective: f64,
    /// `objective / clean objective over the same survivors`.
    pub inflation: f64,
    /// Coflows cancelled by the plan.
    pub cancelled: usize,
    /// Injected events (identical across rows — one shared plan).
    pub events: usize,
    /// Planning epochs charged by the engine.
    pub replans: usize,
}

/// One policy's tournament row.
#[derive(Clone, Debug)]
pub struct TournamentRow {
    /// Registry name.
    pub policy: String,
    /// Proven approximation bound, when the policy carries one.
    pub bound: Option<f64>,
    /// Clean TWCT on the grid instance.
    pub objective: f64,
    /// Clean schedule makespan.
    pub makespan: u64,
    /// `objective / lp_bound` — the measured approximation ratio.
    pub ratio: f64,
    /// Clean run wall-clock (policy construction + engine), ms.
    pub wall_ms: f64,
    /// Fault-round numbers; `None` when `supports_faults` is false.
    pub fault: Option<TournamentFault>,
}

/// One policy's windowed scale row.
#[derive(Clone, Debug)]
pub struct ScaleRow {
    /// Registry name.
    pub policy: String,
    /// Windowed ordering mode the policy maps to.
    pub mode: &'static str,
    /// Streamed TWCT.
    pub objective: f64,
    /// Executor horizon after the last window.
    pub makespan: u64,
    /// Stream + order + execute wall-clock of the mode, ms.
    pub wall_ms: f64,
}

/// The full tournament report.
#[derive(Clone, Debug)]
pub struct TournamentReport {
    /// Workload seed (grid instance, fault plan, and scale stream).
    pub seed: u64,
    /// Grid instance fabric.
    pub ports: usize,
    /// Grid instance coflow count.
    pub coflows: usize,
    /// Interval-LP lower bound of the grid instance.
    pub lp_bound: f64,
    /// Shared fault-plan rate.
    pub fault_rate: f64,
    /// One row per selected policy, in selection order.
    pub rows: Vec<TournamentRow>,
    /// Scale-round rows, same order.
    pub scale: Vec<ScaleRow>,
}

/// The windowed ordering analog a policy maps to in the scale round.
pub fn scale_mode(entry: &PolicyEntry) -> &'static str {
    if entry.name == "shafiee-ghaderi" {
        "primal-dual"
    } else if entry.caps.needs_lp {
        "windowed-lp"
    } else {
        "rho"
    }
}

/// The sparse analog of `OrderRule::PortPrimalDual` over one admission
/// window: "machine" loads are the per-port sums of the window's sparse
/// load lists (ingress ports `0..m`, egress `m..2m`), and the usual
/// primal–dual peel — most-loaded port, minimum residual-weight ratio,
/// placed last — runs on those.
pub fn sparse_primal_dual_order(ports: usize, window: &[SparseCoflowLoads]) -> Vec<usize> {
    let n = window.len();
    let load_on = |k: usize, port: usize| -> u64 {
        let c = &window[k];
        let (list, p) = if port < ports {
            (&c.ingress, port)
        } else {
            (&c.egress, port - ports)
        };
        list.iter().find(|&&(q, _)| q == p).map(|&(_, d)| d).unwrap_or(0)
    };
    let mut total = vec![0u64; 2 * ports];
    for c in window {
        for &(p, d) in &c.ingress {
            total[p] += d;
        }
        for &(p, d) in &c.egress {
            total[ports + p] += d;
        }
    }
    let mut residual: Vec<f64> = window.iter().map(|c| c.weight).collect();
    let mut remaining = vec![true; n];
    let mut order_rev = Vec::with_capacity(n);
    for _ in 0..n {
        let (port, &load) = total
            .iter()
            .enumerate()
            .max_by_key(|&(_, &l)| l)
            .unwrap_or_else(|| unreachable!("fabric has at least one port"));
        let k_star = if load == 0 {
            (0..n)
                .find(|&k| remaining[k])
                .unwrap_or_else(|| unreachable!("loop runs once per remaining coflow"))
        } else {
            let mut best: Option<(usize, f64)> = None;
            for k in 0..n {
                if !remaining[k] {
                    continue;
                }
                let l = load_on(k, port);
                if l == 0 {
                    continue;
                }
                let ratio = residual[k] / l as f64;
                if best.is_none_or(|(_, r)| ratio < r) {
                    best = Some((k, ratio));
                }
            }
            let (k_star, theta) =
                best.unwrap_or_else(|| unreachable!("max-load port has a contributing coflow"));
            for k in 0..n {
                if remaining[k] && k != k_star {
                    residual[k] -= theta * load_on(k, port) as f64;
                }
            }
            k_star
        };
        remaining[k_star] = false;
        for p in 0..ports {
            total[p] -= load_on(k_star, p);
            total[ports + p] -= load_on(k_star, ports + p);
        }
        order_rev.push(k_star);
    }
    order_rev.reverse();
    order_rev
}

/// Streams the scale-round workload once under `mode` and returns
/// `(objective, makespan, wall_ms)`.
fn run_scale_mode(mode: &str, seed: u64) -> (f64, u64, f64) {
    let lp_opts = SimplexOptions {
        max_iterations: 200_000,
        time_limit_ms: Some(10_000),
        stall_window: Some(20_000),
        ..SimplexOptions::default()
    };
    let started = Instant::now();
    let mut stream = CoflowStream::new(StreamConfig {
        ports: SCALE_PORTS,
        num_coflows: SCALE_COFLOWS,
        seed,
        ..StreamConfig::default()
    });
    let mut exec = SparseExecutor::new(SCALE_PORTS);
    let mut objective = 0.0;
    let mut batch: Vec<SparseCoflow> = Vec::with_capacity(SCALE_WINDOW);
    loop {
        batch.clear();
        while batch.len() < SCALE_WINDOW {
            match stream.next() {
                Some(c) => batch.push(c),
                None => break,
            }
        }
        if batch.is_empty() {
            break;
        }
        let order = match mode {
            "windowed-lp" => {
                let loads: Vec<SparseCoflowLoads> = batch.iter().map(loads_of).collect();
                match try_solve_windowed_sparse(SCALE_PORTS, &loads, &lp_opts) {
                    Ok(relax) => relax.order,
                    Err(_) => smith_order(&batch),
                }
            }
            "primal-dual" => {
                let loads: Vec<SparseCoflowLoads> = batch.iter().map(loads_of).collect();
                sparse_primal_dual_order(SCALE_PORTS, &loads)
            }
            _ => smith_order(&batch),
        };
        for &k in &order {
            let completion = exec.run(&batch[k]);
            objective += batch[k].weight * completion as f64;
        }
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    (objective, exec.horizon(), wall_ms)
}

/// Runs the tournament on `instance` over the registry selection `spec`
/// (`all` or a comma-separated name list). Every policy runs through the
/// unmodified unified engine; any invalid schedule panics via
/// [`verify_faulty_outcome`] — that is an engine bug, not data.
pub fn run_tournament(
    instance: &Instance,
    seed: u64,
    spec: &str,
) -> Result<TournamentReport, String> {
    let registry = PolicyRegistry::builtin();
    let entries = registry.select(spec)?;
    let lp_bound = interval_lp_bound(instance);

    // Round 1: clean runs via a quiet plan (rate 0 == the clean schedule,
    // and the fault-aware engine accepts every policy).
    let quiet = FaultPlan::generate(instance.ports(), instance.len(), 1, 0.0, seed);
    let mut clean: Vec<(&PolicyEntry, FaultyOutcome, f64)> = Vec::with_capacity(entries.len());
    for entry in &entries {
        let started = Instant::now();
        let mut policy = entry.build(instance);
        let out = run_policy_with_faults(instance, policy.as_mut(), &quiet)
            .map_err(|e| format!("policy {}: {}", entry.name, e))?;
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        if let Err(e) = verify_faulty_outcome(instance, &quiet, &out) {
            panic!("policy {}: invalid clean schedule: {}", entry.name, e);
        }
        clean.push((entry, out, wall_ms));
    }

    // Round 2: one shared plan over the horizon every fault-capable clean
    // schedule fits in, replayed per policy.
    let horizon = clean
        .iter()
        .filter(|(e, ..)| e.caps.supports_faults)
        .map(|(_, out, _)| out.executed.makespan())
        .max()
        .unwrap_or(1)
        .max(1);
    let plan = FaultPlan::generate(
        instance.ports(),
        instance.len(),
        horizon,
        TOURNAMENT_FAULT_RATE,
        seed.wrapping_add(FAULT20_SEED_OFFSET),
    );

    let mut rows = Vec::with_capacity(clean.len());
    for (entry, clean_out, wall_ms) in &clean {
        let fault = if entry.caps.supports_faults {
            let mut policy = entry.build(instance);
            let out = run_policy_with_faults(instance, policy.as_mut(), &plan)
                .map_err(|e| format!("policy {} under faults: {}", entry.name, e))?;
            if let Err(e) = verify_faulty_outcome(instance, &plan, &out) {
                panic!("policy {}: invalid faulted schedule: {}", entry.name, e);
            }
            let cancelled = out.completions.iter().filter(|c| c.is_none()).count();
            let baseline_objective: f64 = out
                .completions
                .iter()
                .enumerate()
                .filter(|(_, c)| c.is_some())
                .map(|(k, _)| {
                    instance.coflow(k).weight * clean_out.completions[k].unwrap_or(0) as f64
                })
                .sum();
            let inflation = if baseline_objective > 0.0 {
                out.objective / baseline_objective
            } else {
                1.0
            };
            Some(TournamentFault {
                objective: out.objective,
                inflation,
                cancelled,
                events: plan.events.len(),
                replans: out.replans,
            })
        } else {
            None
        };
        rows.push(TournamentRow {
            policy: entry.name.to_string(),
            bound: entry.bound,
            objective: clean_out.objective,
            makespan: clean_out.executed.makespan(),
            ratio: if lp_bound > 0.0 { clean_out.objective / lp_bound } else { 1.0 },
            wall_ms: *wall_ms,
            fault,
        });
    }

    // Round 3: each distinct windowed ordering mode streams the cell once;
    // rows share their mode's numbers (the ordering *is* the policy at
    // this scale — the executor is common).
    let mut mode_results: Vec<(&'static str, (f64, u64, f64))> = Vec::new();
    let mut scale = Vec::with_capacity(entries.len());
    for entry in &entries {
        let mode = scale_mode(entry);
        let result = match mode_results.iter().find(|(m, _)| *m == mode) {
            Some((_, r)) => *r,
            None => {
                let r = run_scale_mode(mode, seed);
                mode_results.push((mode, r));
                r
            }
        };
        scale.push(ScaleRow {
            policy: entry.name.to_string(),
            mode,
            objective: result.0,
            makespan: result.1,
            wall_ms: result.2,
        });
    }

    Ok(TournamentReport {
        seed,
        ports: instance.ports(),
        coflows: instance.len(),
        lp_bound,
        fault_rate: TOURNAMENT_FAULT_RATE,
        rows,
        scale,
    })
}

/// Plain-text tournament table.
pub fn render_tournament(report: &TournamentReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== tournament: {} policies, {}x{} grid, LP bound {:.1}, fault rate {} (seed {}) ==",
        report.rows.len(),
        report.ports,
        report.coflows,
        report.lp_bound,
        report.fault_rate,
        report.seed
    );
    let _ = writeln!(
        s,
        "{:<16} {:>8} {:>10} {:>7} {:>8} {:>10} {:>10} {:>9}",
        "policy", "bound", "TWCT", "ratio", "wall_ms", "fault_TWCT", "inflation", "cancelled"
    );
    for r in &report.rows {
        let bound = r.bound.map(|b| format!("{:.2}", b)).unwrap_or_else(|| "-".into());
        let (ft, fi, fc) = match &r.fault {
            Some(f) => (
                format!("{:.0}", f.objective),
                format!("{:.3}", f.inflation),
                f.cancelled.to_string(),
            ),
            None => ("n/a".into(), "n/a".into(), "n/a".into()),
        };
        let _ = writeln!(
            s,
            "{:<16} {:>8} {:>10.0} {:>7.3} {:>8.1} {:>10} {:>10} {:>9}",
            r.policy, bound, r.objective, r.ratio, r.wall_ms, ft, fi, fc
        );
    }
    let _ = writeln!(
        s,
        "-- scale round: m={}, n={}, window {} --",
        SCALE_PORTS, SCALE_COFLOWS, SCALE_WINDOW
    );
    let _ = writeln!(
        s,
        "{:<16} {:<12} {:>12} {:>10} {:>8}",
        "policy", "mode", "TWCT", "makespan", "wall_ms"
    );
    for r in &report.scale {
        let _ = writeln!(
            s,
            "{:<16} {:<12} {:>12.0} {:>10} {:>8.1}",
            r.policy, r.mode, r.objective, r.makespan, r.wall_ms
        );
    }
    s
}

/// Serializes the report as `coflow-tournament/1` JSON.
pub fn render_tournament_json(report: &TournamentReport) -> String {
    let mut rows = String::from("[\n");
    for (i, r) in report.rows.iter().enumerate() {
        rows.push_str("    {\n");
        let _ = writeln!(rows, "      \"policy\": {},", json::quote(&r.policy));
        let _ = writeln!(
            rows,
            "      \"bound\": {},",
            r.bound.map(fmt_f64).unwrap_or_else(|| "null".into())
        );
        let _ = writeln!(rows, "      \"objective\": {},", fmt_f64(r.objective));
        let _ = writeln!(rows, "      \"makespan\": {},", r.makespan);
        let _ = writeln!(rows, "      \"ratio\": {},", fmt_f64(r.ratio));
        let _ = writeln!(rows, "      \"wall_ms\": {},", fmt_f64(r.wall_ms));
        match &r.fault {
            Some(f) => {
                let _ = writeln!(
                    rows,
                    "      \"fault\": {{\"objective\": {}, \"inflation\": {}, \
                     \"cancelled\": {}, \"events\": {}, \"replans\": {}}}",
                    fmt_f64(f.objective),
                    fmt_f64(f.inflation),
                    f.cancelled,
                    f.events,
                    f.replans
                );
            }
            None => {
                let _ = writeln!(rows, "      \"fault\": null");
            }
        }
        rows.push_str(if i + 1 < report.rows.len() { "    },\n" } else { "    }\n" });
    }
    rows.push_str("  ]");

    let mut scale_rows = String::from("[\n");
    for (i, r) in report.scale.iter().enumerate() {
        let _ = write!(
            scale_rows,
            "      {{\"policy\": {}, \"mode\": {}, \"objective\": {}, \
             \"makespan\": {}, \"wall_ms\": {}}}",
            json::quote(&r.policy),
            json::quote(r.mode),
            fmt_f64(r.objective),
            r.makespan,
            fmt_f64(r.wall_ms)
        );
        scale_rows.push_str(if i + 1 < report.scale.len() { ",\n" } else { "\n" });
    }
    scale_rows.push_str("    ]");
    let scale = format!(
        "{{\n    \"ports\": {}, \"coflows\": {}, \"window\": {},\n    \"rows\": {}\n  }}",
        SCALE_PORTS, SCALE_COFLOWS, SCALE_WINDOW, scale_rows
    );

    let mut doc = crate::sink::JsonDoc::new(SCHEMA);
    doc.num("seed", report.seed)
        .num("ports", report.ports)
        .num("coflows", report.coflows)
        .float("lp_bound", report.lp_bound)
        .float("fault_rate", report.fault_rate)
        .raw("rows", rows)
        .raw("scale", scale);
    doc.render()
}

fn num_f64(v: &JsonValue) -> Option<f64> {
    match v {
        JsonValue::Num(s) => s.parse().ok(),
        _ => None,
    }
}

/// Parsed gate view of one tournament row.
struct ParsedRow {
    policy: String,
    bound: Option<f64>,
    objective: f64,
    ratio: f64,
    wall_ms: f64,
    fault: Option<(f64, f64, f64)>, // (objective, inflation, cancelled)
}

fn parse_rows(doc: &JsonValue) -> Result<Vec<ParsedRow>, String> {
    let Some(JsonValue::Arr(rows)) = doc.get("rows") else {
        return Err("report has no 'rows' array".to_string());
    };
    if rows.is_empty() {
        return Err("report has no rows".to_string());
    }
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let policy = match row.get("policy") {
            Some(JsonValue::Str(s)) => s.clone(),
            _ => return Err("row missing 'policy'".to_string()),
        };
        fn num(row: &JsonValue, policy: &str, key: &str) -> Result<f64, String> {
            row.get(key)
                .and_then(num_f64)
                .ok_or_else(|| format!("row {} missing '{}'", policy, key))
        }
        let bound = match row.get("bound") {
            Some(JsonValue::Null) => None,
            Some(v) => Some(num_f64(v).ok_or_else(|| format!("row {} bad 'bound'", policy))?),
            None => return Err(format!("row {} missing 'bound'", policy)),
        };
        let fault = match row.get("fault") {
            Some(JsonValue::Null) => None,
            Some(f) => {
                let fnum = |key: &str| -> Result<f64, String> {
                    f.get(key)
                        .and_then(num_f64)
                        .ok_or_else(|| format!("row {} fault missing '{}'", policy, key))
                };
                Some((fnum("objective")?, fnum("inflation")?, fnum("cancelled")?))
            }
            None => return Err(format!("row {} missing 'fault'", policy)),
        };
        out.push(ParsedRow {
            bound,
            objective: num(row, &policy, "objective")?,
            ratio: num(row, &policy, "ratio")?,
            wall_ms: num(row, &policy, "wall_ms")?,
            fault,
            policy,
        });
    }
    Ok(out)
}

/// Parsed gate view of one scale row: `(policy, objective, wall_ms)`.
fn parse_scale_rows(doc: &JsonValue) -> Result<Vec<(String, f64, f64)>, String> {
    let Some(scale) = doc.get("scale") else {
        return Err("report has no 'scale' object".to_string());
    };
    let Some(JsonValue::Arr(rows)) = scale.get("rows") else {
        return Err("scale has no 'rows' array".to_string());
    };
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let policy = match row.get("policy") {
            Some(JsonValue::Str(s)) => s.clone(),
            _ => return Err("scale row missing 'policy'".to_string()),
        };
        let objective = row
            .get("objective")
            .and_then(num_f64)
            .ok_or_else(|| format!("scale row {} missing 'objective'", policy))?;
        let wall = row
            .get("wall_ms")
            .and_then(num_f64)
            .ok_or_else(|| format!("scale row {} missing 'wall_ms'", policy))?;
        out.push((policy, objective, wall));
    }
    Ok(out)
}

/// Validates a serialized `coflow-tournament/1` report:
///
/// * the schema tag matches and every canonical registry policy has a row;
/// * every ratio is ≥ 1 (no schedule beats the LP lower bound) and, when
///   the row carries a proven bound, ≤ that bound;
/// * fault cells never deflate without cancellations;
/// * every scale row has a positive objective.
///
/// Returns a one-line summary on success.
pub fn validate_tournament_json(text: &str) -> Result<String, String> {
    let doc = json::parse(text).map_err(|e| format!("parse: {}", e))?;
    match doc.get("schema") {
        Some(JsonValue::Str(s)) if s == SCHEMA => {}
        other => {
            return Err(format!("unsupported schema {:?} (expected {})", other, SCHEMA))
        }
    }
    let lp_bound = doc
        .get("lp_bound")
        .and_then(num_f64)
        .ok_or("report missing 'lp_bound'")?;
    if lp_bound <= 0.0 {
        return Err(format!("non-positive lp_bound {}", lp_bound));
    }
    let rows = parse_rows(&doc)?;
    for row in &rows {
        if row.ratio < 1.0 - 1e-9 {
            return Err(format!(
                "policy {}: ratio {} < 1 — schedule beats the LP lower bound",
                row.policy, row.ratio
            ));
        }
        if let Some(bound) = row.bound {
            if row.ratio > bound + 1e-9 {
                return Err(format!(
                    "policy {}: measured ratio {} exceeds the proven bound {}",
                    row.policy, row.ratio, bound
                ));
            }
        }
        if (row.objective / lp_bound - row.ratio).abs() > 1e-6 {
            return Err(format!(
                "policy {}: ratio {} disagrees with objective/lp_bound {}",
                row.policy,
                row.ratio,
                row.objective / lp_bound
            ));
        }
        if let Some((_, inflation, cancelled)) = row.fault {
            if cancelled == 0.0 && inflation < 1.0 - 1e-9 {
                return Err(format!(
                    "policy {}: fault inflation {} < 1 without cancellations",
                    row.policy, inflation
                ));
            }
        }
    }
    let registry = PolicyRegistry::builtin();
    for entry in registry.canonical() {
        if !rows.iter().any(|r| r.policy == entry.name) {
            return Err(format!("canonical policy '{}' missing from report", entry.name));
        }
    }
    let scale = parse_scale_rows(&doc)?;
    if scale.is_empty() {
        return Err("scale round has no rows".to_string());
    }
    for (policy, objective, _) in &scale {
        if *objective <= 0.0 {
            return Err(format!("scale row {}: non-positive objective", policy));
        }
    }
    Ok(format!(
        "{} policies, {} scale rows, ratios within bounds",
        rows.len(),
        scale.len()
    ))
}

/// One compared metric from [`compare_tournament`].
#[derive(Clone, Debug)]
pub struct TournamentDelta {
    /// `grid` or `scale`.
    pub section: &'static str,
    /// Policy name.
    pub policy: String,
    /// Metric name (`objective`, `ratio`, `fault_objective`, `wall_ms`).
    pub metric: &'static str,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// True when the current value breaches the metric's rule.
    pub regressed: bool,
}

/// Compares two serialized tournament reports row by row, matched on the
/// policy name. Objectives, ratios, and fault objectives are compared
/// **bit-exactly in both directions** (every policy of either side must
/// appear on the other — a vanished or new row is a drift, not a skip);
/// wall-clock regresses only past `wall_tol` (fractional) *and* the
/// [`ABS_FLOOR_MS`] absolute floor.
pub fn compare_tournament(
    baseline: &str,
    current: &str,
    wall_tol: f64,
) -> Result<Vec<TournamentDelta>, String> {
    let base_doc = json::parse(baseline).map_err(|e| format!("baseline: {}", e))?;
    let cur_doc = json::parse(current).map_err(|e| format!("current: {}", e))?;
    for (label, doc) in [("baseline", &base_doc), ("current", &cur_doc)] {
        match doc.get("schema") {
            Some(JsonValue::Str(s)) if s == SCHEMA => {}
            other => {
                return Err(format!(
                    "{}: unsupported schema {:?} (expected {})",
                    label, other, SCHEMA
                ))
            }
        }
    }
    let base = parse_rows(&base_doc).map_err(|e| format!("baseline: {}", e))?;
    let cur = parse_rows(&cur_doc).map_err(|e| format!("current: {}", e))?;
    for (side, have, other) in [("baseline", &base, &cur), ("current", &cur, &base)] {
        for row in have.iter() {
            if !other.iter().any(|r| r.policy == row.policy) {
                return Err(format!(
                    "policy '{}' present only in the {} report",
                    row.policy, side
                ));
            }
        }
    }
    let mut deltas = Vec::new();
    for row in &cur {
        let b = base
            .iter()
            .find(|r| r.policy == row.policy)
            .unwrap_or_else(|| unreachable!("coverage checked above"));
        deltas.push(TournamentDelta {
            section: "grid",
            policy: row.policy.clone(),
            metric: "objective",
            baseline: b.objective,
            current: row.objective,
            regressed: b.objective.to_bits() != row.objective.to_bits(),
        });
        deltas.push(TournamentDelta {
            section: "grid",
            policy: row.policy.clone(),
            metric: "ratio",
            baseline: b.ratio,
            current: row.ratio,
            regressed: b.ratio.to_bits() != row.ratio.to_bits(),
        });
        deltas.push(TournamentDelta {
            section: "grid",
            policy: row.policy.clone(),
            metric: "wall_ms",
            baseline: b.wall_ms,
            current: row.wall_ms,
            regressed: row.wall_ms > b.wall_ms * (1.0 + wall_tol)
                && row.wall_ms - b.wall_ms > ABS_FLOOR_MS,
        });
        match (&b.fault, &row.fault) {
            (Some((b_obj, ..)), Some((c_obj, ..))) => deltas.push(TournamentDelta {
                section: "grid",
                policy: row.policy.clone(),
                metric: "fault_objective",
                baseline: *b_obj,
                current: *c_obj,
                regressed: b_obj.to_bits() != c_obj.to_bits(),
            }),
            (None, None) => {}
            _ => {
                return Err(format!(
                    "policy '{}': fault round present on only one side",
                    row.policy
                ))
            }
        }
    }
    let base_scale = parse_scale_rows(&base_doc).map_err(|e| format!("baseline: {}", e))?;
    let cur_scale = parse_scale_rows(&cur_doc).map_err(|e| format!("current: {}", e))?;
    for (policy, objective, wall) in &cur_scale {
        let Some((_, b_obj, b_wall)) = base_scale.iter().find(|(p, ..)| p == policy) else {
            return Err(format!("scale row '{}' missing from the baseline", policy));
        };
        deltas.push(TournamentDelta {
            section: "scale",
            policy: policy.clone(),
            metric: "objective",
            baseline: *b_obj,
            current: *objective,
            regressed: b_obj.to_bits() != objective.to_bits(),
        });
        deltas.push(TournamentDelta {
            section: "scale",
            policy: policy.clone(),
            metric: "wall_ms",
            baseline: *b_wall,
            current: *wall,
            regressed: *wall > b_wall * (1.0 + wall_tol) && wall - b_wall > ABS_FLOOR_MS,
        });
    }
    if deltas.is_empty() {
        return Err("no comparable rows".to_string());
    }
    Ok(deltas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::arrivals_instance;

    fn tiny_report() -> TournamentReport {
        run_tournament(&arrivals_instance(8, 10, 3), 3, "all").expect("tournament runs")
    }

    #[test]
    fn tournament_covers_the_canonical_six_and_validates() {
        let report = tiny_report();
        let names: Vec<&str> = report.rows.iter().map(|r| r.policy.as_str()).collect();
        assert_eq!(
            names,
            ["bvn-batch", "online", "greedy", "resilient", "shafiee-ghaderi", "im-purohit"]
        );
        // The open-loop planner sits the fault round out; everyone else runs.
        for r in &report.rows {
            assert_eq!(r.fault.is_some(), r.policy != "bvn-batch", "{}", r.policy);
            assert!(r.ratio >= 1.0 - 1e-9, "{}: ratio {}", r.policy, r.ratio);
            if let Some(bound) = r.bound {
                assert!(r.ratio <= bound + 1e-9, "{}: {} > {}", r.policy, r.ratio, bound);
            }
        }
        assert_eq!(report.scale.len(), 6);
        let text = render_tournament_json(&report);
        let summary = validate_tournament_json(&text).expect("report validates");
        assert!(summary.contains("6 policies"), "{}", summary);
        assert!(render_tournament(&report).contains("primal-dual"));
    }

    #[test]
    fn tournament_is_deterministic_and_self_compares_clean() {
        let a = render_tournament_json(&tiny_report());
        let b = render_tournament_json(&tiny_report());
        let deltas = compare_tournament(&a, &b, 0.35).expect("compare");
        assert!(
            deltas.iter().all(|d| !d.regressed || d.metric == "wall_ms"),
            "objective/ratio drift between identical runs: {:?}",
            deltas.iter().filter(|d| d.regressed).collect::<Vec<_>>()
        );
    }

    #[test]
    fn comparison_flags_drift_and_missing_rows() {
        let report = tiny_report();
        let baseline = render_tournament_json(&report);
        let mut drifted = report.clone();
        drifted.rows[0].objective += 1.0;
        let deltas =
            compare_tournament(&baseline, &render_tournament_json(&drifted), 0.35).expect("ok");
        assert!(deltas
            .iter()
            .any(|d| d.metric == "objective" && d.policy == "bvn-batch" && d.regressed));
        let mut missing = report.clone();
        missing.rows.pop();
        missing.scale.pop();
        assert!(
            compare_tournament(&baseline, &render_tournament_json(&missing), 0.35).is_err(),
            "a vanished policy is a drift, not a skip"
        );
        assert!(compare_tournament("{\"schema\": \"other/9\"}", &baseline, 0.35).is_err());
    }

    #[test]
    fn validation_rejects_bound_and_lower_bound_violations() {
        let report = tiny_report();
        let text = render_tournament_json(&report);
        // Forge a ratio above the row's proven bound (keep objective
        // consistent by scaling it too — the consistency check runs first).
        let sg = report.rows.iter().find(|r| r.policy == "shafiee-ghaderi").unwrap();
        let forged = text
            .replacen(&format!("\"ratio\": {}", fmt_f64(sg.ratio)), "\"ratio\": 99.0", 1)
            .replacen(
                &format!("\"objective\": {}", fmt_f64(sg.objective)),
                &format!("\"objective\": {}", fmt_f64(report.lp_bound * 99.0)),
                1,
            );
        let err = validate_tournament_json(&forged).unwrap_err();
        assert!(err.contains("exceeds the proven bound"), "{}", err);
    }

    #[test]
    fn sparse_primal_dual_matches_the_dense_rule_on_a_lifted_window() {
        use coflow::{compute_order, Coflow, OrderRule};
        use coflow_matching::IntMatrix;
        // A window with distinct port pressures, lifted to a dense
        // instance: the sparse peel must reproduce the dense H_pd order.
        let dense = coflow::Instance::new(
            3,
            vec![
                Coflow::new(0, IntMatrix::from_nested(&[[4, 0, 0], [0, 1, 0], [0, 0, 0]])),
                Coflow::new(1, IntMatrix::from_nested(&[[2, 0, 0], [0, 0, 3], [0, 0, 0]]))
                    .with_weight(2.0),
                Coflow::new(2, IntMatrix::from_nested(&[[0, 0, 0], [0, 0, 0], [0, 5, 1]])),
            ],
        );
        let window: Vec<SparseCoflowLoads> = (0..3)
            .map(|k| {
                let c = dense.coflow(k);
                let mut ingress = Vec::new();
                let mut egress = Vec::new();
                for p in 0..3 {
                    let row: u64 = c.demand.row_sum(p);
                    let col: u64 = c.demand.col_sum(p);
                    if row > 0 {
                        ingress.push((p, row));
                    }
                    if col > 0 {
                        egress.push((p, col));
                    }
                }
                SparseCoflowLoads {
                    release: 0,
                    weight: c.weight,
                    rho: ingress.iter().chain(&egress).map(|&(_, d)| d).max().unwrap_or(0),
                    ingress,
                    egress,
                }
            })
            .collect();
        assert_eq!(
            sparse_primal_dual_order(3, &window),
            compute_order(&dense, OrderRule::PortPrimalDual)
        );
    }
}
