//! Cross-run regression diffing (`coflow-diff/1`).
//!
//! [`diff_records`] compares two ledger records — or two committed
//! reports lifted into pseudo-records by [`side_from_path`] — and
//! attributes the differences along three sections:
//!
//! * **stage** — per-stage exclusive wall-clock, regressed when the
//!   current value exceeds the baseline by more than the tolerance *and*
//!   the absolute growth clears [`crate::profile::ABS_FLOOR_MS`] (the
//!   same two-sided rule the perf gate uses, so a diff verdict and a gate
//!   verdict never disagree about the same numbers);
//! * **objective** — per-cell/per-pin objectives, compared **bit-exactly**
//!   (`f64::to_bits`): the schedulers are deterministic, so any drift at
//!   all is a behavioral change, not noise;
//! * **mem** — per-stage allocation calls and bytes plus whole-run
//!   allocator totals under the mem-gate floors. Peak RSS is reported but
//!   never regressed (monotone per process, machine-dependent).
//!
//! The comparator is pure; rendering (table, JSON document) and the exit
//! code live with the caller in `experiments.rs`, so `diff` doubles as a
//! CI gate.

use crate::profile::{ABS_FLOOR_MS, MEM_ALLOC_FLOOR, MEM_BYTES_FLOOR};
use crate::sink::JsonDoc;
use coflow_workloads::json::{self, fmt_f64, JsonValue};
use obs::ledger::{LedgerRecord, LEDGER_SCHEMA};
use std::fmt::Write as _;

/// Schema tag of the rendered diff report.
pub const DIFF_SCHEMA: &str = "coflow-diff/1";

/// Default fractional tolerance for timing and memory sections. Lenient
/// by design: two back-to-back profiles of the same tree differ by
/// scheduler noise, and the default must not cry wolf. Gates that want
/// the perf-gate strictness pass their own `--tolerance`.
pub const DEFAULT_TOLERANCE: f64 = 0.5;

/// One compared metric.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffRow {
    /// Section: `stage`, `objective`, or `mem`.
    pub section: &'static str,
    /// Metric name (stage, cell label, or mem metric).
    pub name: String,
    /// Value in A (baseline side).
    pub a: f64,
    /// Value in B (current side).
    pub b: f64,
    /// True when B regresses past the section's threshold.
    pub regressed: bool,
}

/// A full diff: the two compared records plus one row per shared metric.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Baseline-side identity (selector or path, plus seq when a ledger
    /// record).
    pub a_id: String,
    /// Current-side identity.
    pub b_id: String,
    /// Tolerance the stage/mem sections were judged against.
    pub tolerance: f64,
    /// Every compared metric, section-major.
    pub rows: Vec<DiffRow>,
    /// Metrics present on only one side (named, never silently dropped).
    pub unmatched: Vec<String>,
}

impl DiffReport {
    /// Regressed rows, section-major — what the exit code is based on.
    pub fn regressions(&self) -> Vec<&DiffRow> {
        self.rows.iter().filter(|r| r.regressed).collect()
    }
}

/// One side of a diff: a labeled bag of metrics lifted from a ledger
/// record or a committed report file.
#[derive(Clone, Debug, Default)]
pub struct DiffSide {
    /// Identity shown in tables and carried into the JSON report.
    pub id: String,
    /// Schema the side was read from (`coflow-ledger/1`,
    /// `coflow-bench-grid/3`, …) — listed in the diff's provenance.
    pub schema: String,
    /// Per-stage wall-clock, ms.
    pub stages_ms: Vec<(String, f64)>,
    /// Objectives by cell/pin label.
    pub objectives: Vec<(String, f64)>,
    /// Memory metrics (allocs:STAGE, alloc_bytes:STAGE, totals).
    pub mem: Vec<(String, f64)>,
    /// Informational metrics, compared but never regressed.
    pub info: Vec<(String, f64)>,
}

impl DiffSide {
    /// Lifts a ledger record into a diff side.
    pub fn from_record(rec: &LedgerRecord, id: &str) -> Self {
        let mut mem = Vec::new();
        for (stage, v) in &rec.stage_allocs {
            mem.push((format!("allocs:{}", stage), *v as f64));
        }
        for (stage, v) in &rec.stage_alloc_bytes {
            mem.push((format!("alloc_bytes:{}", stage), *v as f64));
        }
        mem.push(("alloc_calls(total)".to_string(), rec.alloc_calls as f64));
        mem.push(("peak_live_bytes".to_string(), rec.peak_live_bytes as f64));
        DiffSide {
            id: format!("{} (seq {}, {})", id, rec.seq, rec.command),
            schema: LEDGER_SCHEMA.to_string(),
            stages_ms: rec.stages_ms.clone(),
            objectives: rec.objectives.clone(),
            mem,
            info: vec![
                ("peak_rss_kb".to_string(), rec.peak_rss_kb as f64),
                ("elapsed_ms".to_string(), rec.elapsed_ms),
            ],
        }
    }
}

fn num_f64(v: &JsonValue) -> Option<f64> {
    match v {
        JsonValue::Num(s) => s.parse().ok(),
        _ => None,
    }
}

/// Reads a committed report file into a diff side. Supports
/// `coflow-bench-grid/3` (stages + objectives + mem), `coflow-bench-mem/1`
/// (mem only), `coflow-pins/1` (objectives only), and
/// `coflow-bench-scale/1` (stages + objectives + mem per scale cell) —
/// the formats with committed baselines in the repo.
pub fn side_from_path(path: &str) -> Result<DiffSide, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {}", path, e))?;
    let doc = json::parse(&text).map_err(|e| format!("{}: {}", path, e))?;
    let schema = match doc.get("schema") {
        Some(JsonValue::Str(s)) => s.clone(),
        _ => return Err(format!("{}: missing schema tag", path)),
    };
    let mut side = DiffSide {
        id: path.to_string(),
        schema: schema.clone(),
        ..DiffSide::default()
    };
    match schema.as_str() {
        crate::profile::SCHEMA => {
            let Some(JsonValue::Arr(cells)) = doc.get("cells") else {
                return Err(format!("{}: no 'cells' array", path));
            };
            for cell in cells {
                let order = match cell.get("order") {
                    Some(JsonValue::Str(s)) => s.clone(),
                    _ => return Err(format!("{}: cell missing 'order'", path)),
                };
                let case = match cell.get("case") {
                    Some(JsonValue::Str(s)) => s.clone(),
                    _ => return Err(format!("{}: cell missing 'case'", path)),
                };
                let label = format!("{}/{}", order, case);
                if let Some(obj) = cell.get("objective").and_then(num_f64) {
                    side.objectives.push((label, obj));
                }
                if let Some(JsonValue::Obj(pairs)) = cell.get("stages_ms") {
                    for (stage, v) in pairs {
                        if stage == "other" || stage == "total" {
                            continue;
                        }
                        let Some(v) = num_f64(v) else { continue };
                        match side.stages_ms.iter_mut().find(|(s, _)| s == stage) {
                            Some((_, sum)) => *sum += v,
                            None => side.stages_ms.push((stage.clone(), v)),
                        }
                    }
                }
                if let Some(mem) = cell.get("mem") {
                    accumulate_mem(&mut side.mem, mem);
                }
            }
        }
        crate::profile::MEM_SCHEMA => {
            let Some(JsonValue::Arr(cells)) = doc.get("cells") else {
                return Err(format!("{}: no 'cells' array", path));
            };
            for cell in cells {
                if let Some(mem) = cell.get("mem") {
                    accumulate_mem(&mut side.mem, mem);
                }
            }
        }
        crate::pins::SCHEMA => {
            let report = crate::pins::parse_pins(&text).map_err(|e| format!("{}: {}", path, e))?;
            for pin in report.pins {
                side.objectives.push((pin.label, pin.objective));
            }
            side.info.push(("engine_ms".to_string(), report.engine_ms));
        }
        crate::scale::SCHEMA => {
            let Some(JsonValue::Arr(cells)) = doc.get("cells") else {
                return Err(format!("{}: no 'cells' array", path));
            };
            for cell in cells {
                let label = match (
                    cell.get("ports").and_then(num_f64),
                    cell.get("coflows").and_then(num_f64),
                ) {
                    (Some(p), Some(c)) => {
                        crate::scale::cell_label(p as usize, c as usize)
                    }
                    _ => return Err(format!("{}: cell missing ports/coflows", path)),
                };
                if let Some(obj) = cell.get("objective").and_then(num_f64) {
                    side.objectives.push((label, obj));
                }
                if let Some(JsonValue::Obj(pairs)) = cell.get("stages_ms") {
                    for (stage, v) in pairs {
                        if stage == "total" {
                            continue;
                        }
                        let Some(v) = num_f64(v) else { continue };
                        match side.stages_ms.iter_mut().find(|(s, _)| s == stage) {
                            Some((_, sum)) => *sum += v,
                            None => side.stages_ms.push((stage.clone(), v)),
                        }
                    }
                }
                if let Some(mem) = cell.get("mem") {
                    accumulate_mem(&mut side.mem, mem);
                }
            }
        }
        other => {
            return Err(format!(
                "{}: cannot diff schema {:?} (expected {}, {}, {}, or {})",
                path,
                other,
                crate::profile::SCHEMA,
                crate::profile::MEM_SCHEMA,
                crate::pins::SCHEMA,
                crate::scale::SCHEMA
            ))
        }
    }
    Ok(side)
}

/// Sums one cell's `mem` object into the side's metric bag (same metric
/// names as the mem gate).
fn accumulate_mem(acc: &mut Vec<(String, f64)>, mem: &JsonValue) {
    let mut add = |name: String, v: f64| match acc.iter_mut().find(|(n, _)| *n == name) {
        Some((_, sum)) => *sum += v,
        None => acc.push((name, v)),
    };
    for (obj_key, prefix) in [("stage_allocs", "allocs"), ("stage_alloc_bytes", "alloc_bytes")] {
        if let Some(JsonValue::Obj(pairs)) = mem.get(obj_key) {
            for (stage, v) in pairs {
                if let Some(v) = num_f64(v) {
                    add(format!("{}:{}", prefix, stage), v);
                }
            }
        }
    }
    if let Some(v) = mem.get("alloc_calls").and_then(num_f64) {
        add("alloc_calls(total)".to_string(), v);
    }
    // Peak live bytes: max across cells, not a sum.
    if let Some(v) = mem.get("peak_live_bytes").and_then(num_f64) {
        match acc.iter_mut().find(|(n, _)| n == "peak_live_bytes") {
            Some((_, cur)) => *cur = cur.max(v),
            None => acc.push(("peak_live_bytes".to_string(), v)),
        }
    }
}

fn mem_floor(name: &str) -> f64 {
    if name.contains("bytes") {
        MEM_BYTES_FLOOR
    } else {
        MEM_ALLOC_FLOOR
    }
}

/// Compares side A (baseline) against side B (current). Metrics present
/// on only one side are listed in `unmatched`, never judged.
pub fn diff_sides(a: &DiffSide, b: &DiffSide, tolerance: f64) -> DiffReport {
    let mut rows = Vec::new();
    let mut unmatched = Vec::new();
    let shared = |section: &'static str,
                      av: &[(String, f64)],
                      bv: &[(String, f64)],
                      rows: &mut Vec<DiffRow>,
                      unmatched: &mut Vec<String>,
                      judge: &dyn Fn(f64, f64) -> bool| {
        for (name, a_val) in av {
            match bv.iter().find(|(n, _)| n == name) {
                Some((_, b_val)) => rows.push(DiffRow {
                    section,
                    name: name.clone(),
                    a: *a_val,
                    b: *b_val,
                    regressed: judge(*a_val, *b_val),
                }),
                None => unmatched.push(format!("{}:{} (A only)", section, name)),
            }
        }
        for (name, _) in bv {
            if !av.iter().any(|(n, _)| n == name) {
                unmatched.push(format!("{}:{} (B only)", section, name));
            }
        }
    };
    shared(
        "stage",
        &a.stages_ms,
        &b.stages_ms,
        &mut rows,
        &mut unmatched,
        &|av, bv| bv > av * (1.0 + tolerance) && bv - av > ABS_FLOOR_MS,
    );
    shared(
        "objective",
        &a.objectives,
        &b.objectives,
        &mut rows,
        &mut unmatched,
        &|av, bv| av.to_bits() != bv.to_bits(),
    );
    shared(
        "mem",
        &a.mem,
        &b.mem,
        &mut rows,
        &mut unmatched,
        &|av, bv| {
            // The row name isn't visible inside the judge; byte metrics
            // are re-judged below with their own floor, so use the
            // stricter alloc floor here and fix up afterwards.
            bv > av * (1.0 + tolerance) && bv - av > MEM_ALLOC_FLOOR
        },
    );
    // Second pass for byte-metric floors (see note above).
    for row in rows.iter_mut().filter(|r| r.section == "mem") {
        row.regressed = row.b > row.a * (1.0 + tolerance) && row.b - row.a > mem_floor(&row.name);
    }
    shared(
        "info",
        &a.info,
        &b.info,
        &mut rows,
        &mut unmatched,
        &|_, _| false,
    );
    DiffReport {
        a_id: a.id.clone(),
        b_id: b.id.clone(),
        tolerance,
        rows,
        unmatched,
    }
}

/// Convenience wrapper for two ledger records.
pub fn diff_records(
    a: &LedgerRecord,
    b: &LedgerRecord,
    a_id: &str,
    b_id: &str,
    tolerance: f64,
) -> DiffReport {
    diff_sides(
        &DiffSide::from_record(a, a_id),
        &DiffSide::from_record(b, b_id),
        tolerance,
    )
}

/// Renders the human-readable diff table: one row per metric, regressions
/// marked `<< REGRESSED`, unmatched metrics listed at the end.
pub fn render_diff_table(report: &DiffReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "diff A={} vs B={}", report.a_id, report.b_id);
    let _ = writeln!(out, "tolerance {:.0}%", report.tolerance * 100.0);
    let _ = writeln!(
        out,
        "{:<10} {:>26} {:>14} {:>14} {:>9}",
        "section", "metric", "A", "B", "delta"
    );
    for row in &report.rows {
        let delta = if row.a == 0.0 {
            if row.b == 0.0 { 0.0 } else { f64::INFINITY }
        } else {
            (row.b - row.a) / row.a * 100.0
        };
        let _ = writeln!(
            out,
            "{:<10} {:>26} {:>14.2} {:>14.2} {:>+8.1}%{}",
            row.section,
            row.name,
            row.a,
            row.b,
            delta,
            if row.regressed { "  << REGRESSED" } else { "" }
        );
    }
    for name in &report.unmatched {
        let _ = writeln!(out, "unmatched  {}", name);
    }
    let regs = report.regressions();
    if regs.is_empty() {
        let _ = writeln!(out, "verdict: OK ({} metrics compared)", report.rows.len());
    } else {
        let _ = writeln!(
            out,
            "verdict: {} regression(s): {}",
            regs.len(),
            regs.iter()
                .map(|r| format!("{}:{}", r.section, r.name))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    out
}

/// Renders the diff as a `coflow-diff/1` JSON document (via [`JsonDoc`],
/// so it carries the shared provenance header listing all compared
/// schemas).
pub fn render_diff_json(report: &DiffReport, a_schema: &str, b_schema: &str) -> String {
    let mut doc = JsonDoc::new(DIFF_SCHEMA);
    doc.add_schemas(&[a_schema, b_schema]);
    doc.text("a", &report.a_id)
        .text("b", &report.b_id)
        .float("tolerance", report.tolerance)
        .num("regressions", report.regressions().len());
    let mut rows = String::from("[\n");
    for (i, row) in report.rows.iter().enumerate() {
        let _ = write!(
            rows,
            "    {{\"section\": {}, \"metric\": {}, \"a\": {}, \"b\": {}, \
             \"a_bits\": {}, \"b_bits\": {}, \"regressed\": {}}}",
            json::quote(row.section),
            json::quote(&row.name),
            fmt_f64(row.a),
            fmt_f64(row.b),
            row.a.to_bits(),
            row.b.to_bits(),
            row.regressed,
        );
        rows.push_str(if i + 1 < report.rows.len() { ",\n" } else { "\n" });
    }
    rows.push_str("  ]");
    doc.raw("rows", rows);
    let unmatched: Vec<String> =
        report.unmatched.iter().map(|u| json::quote(u)).collect();
    doc.raw("unmatched", format!("[{}]", unmatched.join(", ")));
    doc.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn side(stages: &[(&str, f64)], objectives: &[(&str, f64)]) -> DiffSide {
        DiffSide {
            id: "test".to_string(),
            schema: LEDGER_SCHEMA.to_string(),
            stages_ms: stages.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
            objectives: objectives.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
            ..DiffSide::default()
        }
    }

    #[test]
    fn identical_sides_diff_clean() {
        let a = side(&[("lp_solve", 100.0)], &[("H_LP/d", 6950481.0)]);
        let report = diff_sides(&a, &a.clone(), DEFAULT_TOLERANCE);
        assert!(report.regressions().is_empty());
        assert!(report.unmatched.is_empty());
    }

    #[test]
    fn stage_regression_needs_both_ratio_and_floor() {
        // +30% over 0.2 tolerance AND past the 10 ms floor: regressed.
        let a = side(&[("lp_solve", 100.0)], &[]);
        let b = side(&[("lp_solve", 130.0)], &[]);
        let report = diff_sides(&a, &b, 0.2);
        assert_eq!(report.regressions().len(), 1);
        assert_eq!(report.regressions()[0].name, "lp_solve");
        // Same ratio under the floor: clean (sub-10ms noise).
        let a = side(&[("lp_solve", 10.0)], &[]);
        let b = side(&[("lp_solve", 13.0)], &[]);
        assert!(diff_sides(&a, &b, 0.2).regressions().is_empty());
        // Over the floor but inside tolerance: clean.
        let a = side(&[("lp_solve", 100.0)], &[]);
        let b = side(&[("lp_solve", 115.0)], &[]);
        assert!(diff_sides(&a, &b, 0.2).regressions().is_empty());
    }

    #[test]
    fn objectives_are_judged_bit_exactly_both_directions() {
        let base = 6950481.0f64;
        let flipped = f64::from_bits(base.to_bits() ^ 1);
        let a = side(&[], &[("H_LP/d", base)]);
        let b = side(&[], &[("H_LP/d", flipped)]);
        assert_eq!(diff_sides(&a, &b, DEFAULT_TOLERANCE).regressions().len(), 1);
        // An *improvement* is still a flagged change — determinism drift.
        assert_eq!(diff_sides(&b, &a, DEFAULT_TOLERANCE).regressions().len(), 1);
    }

    #[test]
    fn one_sided_metrics_are_reported_not_judged() {
        let a = side(&[("lp_solve", 100.0)], &[]);
        let b = side(&[("simulate", 50.0)], &[]);
        let report = diff_sides(&a, &b, DEFAULT_TOLERANCE);
        assert!(report.rows.is_empty());
        assert_eq!(report.unmatched.len(), 2);
        assert!(report.regressions().is_empty());
    }

    #[test]
    fn mem_rows_use_per_metric_floors() {
        let mut a = side(&[], &[]);
        a.mem = vec![
            ("allocs:lp_solve".to_string(), 100_000.0),
            ("alloc_bytes:lp_solve".to_string(), 100_000.0),
        ];
        let mut b = side(&[], &[]);
        b.mem = vec![
            // +50k calls, +50% — past the 10k alloc floor: regressed.
            ("allocs:lp_solve".to_string(), 150_000.0),
            // +50k bytes, +50% — under the 1 MiB byte floor: clean.
            ("alloc_bytes:lp_solve".to_string(), 150_000.0),
        ];
        let report = diff_sides(&a, &b, 0.2);
        let regs = report.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "allocs:lp_solve");
    }

    #[test]
    fn json_report_round_trips_and_names_regressions() {
        obs::ledger::set_zero_provenance(true);
        let a = side(&[("lp_solve", 100.0)], &[("H_LP/d", 1.0)]);
        let b = side(&[("lp_solve", 130.0)], &[("H_LP/d", 1.0)]);
        let report = diff_sides(&a, &b, 0.2);
        let text = render_diff_json(&report, LEDGER_SCHEMA, LEDGER_SCHEMA);
        let doc = json::parse(&text).expect("valid JSON");
        assert_eq!(doc.get("schema"), Some(&JsonValue::Str(DIFF_SCHEMA.into())));
        assert_eq!(doc.get("regressions"), Some(&JsonValue::Num("1".into())));
        let table = render_diff_table(&report);
        assert!(table.contains("REGRESSED"));
        assert!(table.contains("stage:lp_solve"));
    }
}
