//! Self-contained HTML dashboard over the run ledger.
//!
//! [`render_dash`] turns a loaded ledger history into **one** HTML string
//! with inline CSS and inline SVG — no external assets, no scripts, so
//! the file can be committed, attached to a PR, or opened from a tmpfs
//! with identical results (the same constraint as the explain layer's SVG
//! sink).
//!
//! Layout, top to bottom:
//!
//! * stat tiles — runs on ledger, last command, last peak RSS, last
//!   elapsed wall-clock;
//! * per-stage trend sparklines (small multiples, one per pipeline
//!   stage): exclusive wall-clock across run records, newest right, with
//!   regression dots where a value jumps past the tolerance over its
//!   predecessor;
//! * memory trajectory sparklines: peak live bytes, peak RSS, allocation
//!   calls;
//! * objective comparison table for the latest run carrying objectives,
//!   with bit-exact change markers against the previous comparable run;
//! * verdict history (gate outcomes, newest first).
//!
//! Colors follow the repo's dataviz conventions: one blue series hue for
//! timing, the orange slot for memory, reserved status colors (with text
//! markers, never color alone) for verdicts, and a `prefers-color-scheme`
//! dark mode driven by CSS custom properties.

use obs::ledger::LedgerRecord;
use std::fmt::Write as _;

/// Fractional jump over the previous sample that earns a regression
/// annotation dot on a sparkline (matches the diff default).
const ANNOTATE_TOLERANCE: f64 = 0.5;

/// Absolute floor (ms) under which a stage jump is never annotated —
/// sub-floor noise would pepper the sparklines with false alarms.
const ANNOTATE_FLOOR_MS: f64 = 10.0;

/// Sparkline geometry (CSS pixels inside the SVG viewBox).
const SPARK_W: f64 = 260.0;
const SPARK_H: f64 = 56.0;
const SPARK_PAD: f64 = 6.0;

/// Escapes text for HTML element and attribute contexts.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

/// Human-scaled value label for sparkline captions.
fn fmt_value(v: f64, unit: &str) -> String {
    match unit {
        "ms" => {
            if v >= 1000.0 {
                format!("{:.2} s", v / 1000.0)
            } else {
                format!("{:.1} ms", v)
            }
        }
        "bytes" => {
            if v >= 1024.0 * 1024.0 {
                format!("{:.1} MiB", v / (1024.0 * 1024.0))
            } else if v >= 1024.0 {
                format!("{:.1} KiB", v / 1024.0)
            } else {
                format!("{:.0} B", v)
            }
        }
        "kb" => format!("{:.1} MiB", v / 1024.0),
        "ratio" => format!("{:.3}", v),
        _ => {
            if v >= 1_000_000.0 {
                format!("{:.2} M", v / 1_000_000.0)
            } else if v >= 1_000.0 {
                format!("{:.1} k", v / 1_000.0)
            } else {
                format!("{:.0}", v)
            }
        }
    }
}

/// One series point: x-position label (seq) and value.
struct Point {
    seq: u64,
    value: f64,
}

/// Renders one sparkline panel: title, latest-value direct label, inline
/// SVG polyline with per-point hover tooltips, and regression-annotation
/// dots where a point jumps past the tolerance over its predecessor.
fn spark_panel(title: &str, points: &[Point], unit: &str, color_var: &str, floor: f64) -> String {
    let mut out = String::new();
    let latest = points.last().map(|p| p.value).unwrap_or(0.0);
    let _ = write!(
        out,
        "<div class=\"panel\"><div class=\"panel-head\"><span class=\"panel-title\">{}</span>\
         <span class=\"panel-value\">{}</span></div>",
        esc(title),
        esc(&fmt_value(latest, unit)),
    );
    let lo = points.iter().map(|p| p.value).fold(f64::INFINITY, f64::min);
    let hi = points.iter().map(|p| p.value).fold(f64::NEG_INFINITY, f64::max);
    let span = if hi > lo { hi - lo } else { 1.0 };
    let n = points.len();
    let x = |i: usize| {
        if n <= 1 {
            SPARK_W / 2.0
        } else {
            SPARK_PAD + (SPARK_W - 2.0 * SPARK_PAD) * i as f64 / (n - 1) as f64
        }
    };
    let y = |v: f64| SPARK_H - SPARK_PAD - (SPARK_H - 2.0 * SPARK_PAD) * (v - lo) / span;
    let _ = write!(
        out,
        "<svg viewBox=\"0 0 {} {}\" width=\"{}\" height=\"{}\" role=\"img\" \
         aria-label=\"{} trend\">",
        SPARK_W, SPARK_H, SPARK_W, SPARK_H, esc(title)
    );
    // Baseline hairline.
    let _ = write!(
        out,
        "<line x1=\"{}\" y1=\"{:.1}\" x2=\"{}\" y2=\"{:.1}\" class=\"axis\"/>",
        SPARK_PAD,
        SPARK_H - SPARK_PAD,
        SPARK_W - SPARK_PAD,
        SPARK_H - SPARK_PAD
    );
    let coords: Vec<String> =
        points.iter().enumerate().map(|(i, p)| format!("{:.1},{:.1}", x(i), y(p.value))).collect();
    let _ = write!(
        out,
        "<polyline points=\"{}\" fill=\"none\" stroke=\"var({})\" stroke-width=\"2\" \
         stroke-linejoin=\"round\" stroke-linecap=\"round\"/>",
        coords.join(" "),
        color_var
    );
    // Per-point hover targets with native tooltips; regression dots where
    // the jump clears both the ratio and the floor.
    for (i, p) in points.iter().enumerate() {
        let regressed = i > 0
            && p.value > points[i - 1].value * (1.0 + ANNOTATE_TOLERANCE)
            && p.value - points[i - 1].value > floor;
        if regressed {
            let _ = write!(
                out,
                "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"4\" fill=\"var(--status-critical)\">\
                 <title>seq {}: {} (+{:.0}% vs prev) — regression</title></circle>",
                x(i),
                y(p.value),
                p.seq,
                esc(&fmt_value(p.value, unit)),
                (p.value / points[i - 1].value - 1.0) * 100.0,
            );
        } else {
            let _ = write!(
                out,
                "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"8\" fill=\"transparent\">\
                 <title>seq {}: {}</title></circle>",
                x(i),
                y(p.value),
                p.seq,
                esc(&fmt_value(p.value, unit)),
            );
        }
    }
    out.push_str("</svg></div>");
    out
}

/// Extracts the trend of one stage across run records.
fn stage_series(runs: &[&LedgerRecord], stage: &str) -> Vec<Point> {
    runs.iter()
        .filter_map(|r| {
            r.stages_ms
                .iter()
                .find(|(s, _)| s == stage)
                .map(|(_, v)| Point { seq: r.seq, value: *v })
        })
        .collect()
}

/// Renders the full dashboard HTML for a loaded ledger history.
pub fn render_dash(records: &[LedgerRecord], title: &str) -> String {
    let runs: Vec<&LedgerRecord> = records.iter().filter(|r| r.kind == "run").collect();
    let verdicts: Vec<&LedgerRecord> = records.iter().filter(|r| r.kind == "verdict").collect();

    let mut body = String::new();

    // --- Stat tiles -------------------------------------------------------
    body.push_str("<section class=\"tiles\">");
    let tile = |label: &str, value: String| {
        format!(
            "<div class=\"tile\"><div class=\"tile-value\">{}</div>\
             <div class=\"tile-label\">{}</div></div>",
            esc(&value),
            esc(label)
        )
    };
    body.push_str(&tile("runs on ledger", runs.len().to_string()));
    body.push_str(&tile("gate verdicts", verdicts.len().to_string()));
    if let Some(last) = runs.last() {
        body.push_str(&tile("last command", last.command.clone()));
        body.push_str(&tile("last wall-clock", fmt_value(last.elapsed_ms, "ms")));
        body.push_str(&tile("last peak RSS", fmt_value(last.peak_rss_kb as f64, "kb")));
    }
    body.push_str("</section>");

    // --- Per-stage trends -------------------------------------------------
    let mut stage_names: Vec<&str> = Vec::new();
    for r in &runs {
        for (s, _) in &r.stages_ms {
            if !stage_names.contains(&s.as_str()) {
                stage_names.push(s);
            }
        }
    }
    if !stage_names.is_empty() {
        body.push_str("<h2>Stage wall-clock trends</h2><section class=\"panels\">");
        for stage in &stage_names {
            let points = stage_series(&runs, stage);
            if points.is_empty() {
                continue;
            }
            body.push_str(&spark_panel(stage, &points, "ms", "--series-1", ANNOTATE_FLOOR_MS));
        }
        body.push_str("</section>");
    }

    // --- Tournament TWCT-ratio trends -------------------------------------
    // One sparkline per registry policy, fed by the `ratio/NAME` objective
    // entries of `tournament` run records: the measured approximation
    // ratio against the interval-LP lower bound, newest right. Regression
    // dots follow the shared icon+tooltip convention (never color alone).
    let tournament_runs: Vec<&LedgerRecord> =
        runs.iter().copied().filter(|r| r.command == "tournament").collect();
    let mut ratio_policies: Vec<String> = Vec::new();
    for r in &tournament_runs {
        for (label, _) in &r.objectives {
            if let Some(name) = label.strip_prefix("ratio/") {
                if !ratio_policies.iter().any(|p| p == name) {
                    ratio_policies.push(name.to_string());
                }
            }
        }
    }
    if !ratio_policies.is_empty() {
        body.push_str(
            "<h2>Tournament TWCT ratios (vs interval-LP lower bound)</h2>\
             <section class=\"panels\">",
        );
        for name in &ratio_policies {
            let key = format!("ratio/{}", name);
            let points: Vec<Point> = tournament_runs
                .iter()
                .filter_map(|r| {
                    r.objectives
                        .iter()
                        .find(|(l, _)| l == &key)
                        .map(|(_, v)| Point { seq: r.seq, value: *v })
                })
                .collect();
            if points.is_empty() {
                continue;
            }
            body.push_str(&spark_panel(
                &format!("{} ratio", name),
                &points,
                "ratio",
                "--series-1",
                0.0,
            ));
        }
        body.push_str("</section>");
    }

    // --- Memory trajectories ----------------------------------------------
    type Extract = fn(&LedgerRecord) -> f64;
    let mem_series: [(&str, &str, Extract); 3] = [
        ("peak live bytes", "bytes", |r| r.peak_live_bytes as f64),
        ("peak RSS", "kb", |r| r.peak_rss_kb as f64),
        ("allocation calls", "count", |r| r.alloc_calls as f64),
    ];
    body.push_str("<h2>Memory trajectories</h2><section class=\"panels\">");
    for (name, unit, extract) in &mem_series {
        let points: Vec<Point> = runs
            .iter()
            .map(|r| Point { seq: r.seq, value: extract(r) })
            .filter(|p| p.value > 0.0)
            .collect();
        if points.is_empty() {
            continue;
        }
        // Memory annotations use a ratio-only rule; the floor is folded
        // into filtering zero samples above.
        body.push_str(&spark_panel(name, &points, unit, "--series-2", 0.0));
    }
    body.push_str("</section>");

    // --- Objective comparison table ---------------------------------------
    let with_obj: Vec<&&LedgerRecord> =
        runs.iter().filter(|r| !r.objectives.is_empty()).collect();
    if let Some(latest) = with_obj.last() {
        let prev = with_obj
            .iter()
            .rev()
            .skip(1)
            .find(|r| r.command == latest.command);
        body.push_str(&format!(
            "<h2>Objectives — latest {} run (seq {})</h2>",
            esc(&latest.command),
            latest.seq
        ));
        body.push_str(
            "<table><thead><tr><th>cell</th><th class=\"num\">objective</th>\
             <th>vs previous</th></tr></thead><tbody>",
        );
        for (label, value) in &latest.objectives {
            let marker = match prev.and_then(|p| {
                p.objectives.iter().find(|(l, _)| l == label).map(|(_, v)| *v)
            }) {
                Some(pv) if pv.to_bits() == value.to_bits() => {
                    "<span class=\"ok\">&#10003; bit-identical</span>".to_string()
                }
                Some(pv) => format!(
                    "<span class=\"bad\">&#10007; changed (was {:.2})</span>",
                    pv
                ),
                None => "<span class=\"muted\">new</span>".to_string(),
            };
            body.push_str(&format!(
                "<tr><td>{}</td><td class=\"num\">{:.2}</td><td>{}</td></tr>",
                esc(label),
                value,
                marker
            ));
        }
        body.push_str("</tbody></table>");
    }

    // --- Verdict history --------------------------------------------------
    if !verdicts.is_empty() {
        body.push_str("<h2>Gate verdicts</h2>");
        body.push_str(
            "<table><thead><tr><th>seq</th><th>gate</th><th>outcome</th>\
             <th>detail</th></tr></thead><tbody>",
        );
        for v in verdicts.iter().rev() {
            let failed = v.verdicts.iter().any(|(_, s)| s != "pass");
            let outcome = if failed {
                "<span class=\"bad\">&#10007; fail</span>"
            } else {
                "<span class=\"ok\">&#10003; pass</span>"
            };
            let detail: Vec<String> = v
                .verdicts
                .iter()
                .filter(|(k, _)| k != "overall")
                .map(|(k, s)| format!("{}={}", esc(k), esc(s)))
                .collect();
            body.push_str(&format!(
                "<tr><td class=\"num\">{}</td><td>{}</td><td>{}</td><td class=\"muted\">{}</td></tr>",
                v.seq,
                esc(&v.command),
                outcome,
                detail.join(" ")
            ));
        }
        body.push_str("</tbody></table>");
    }

    // --- Footer provenance ------------------------------------------------
    let footer = records
        .last()
        .map(|r| {
            format!(
                "ledger tail: seq {}, git {}{}",
                r.seq,
                esc(&r.git_rev[..r.git_rev.len().min(10)]),
                if r.git_dirty { " (dirty)" } else { "" }
            )
        })
        .unwrap_or_else(|| "empty ledger".to_string());

    format!(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n\
         <title>{title}</title>\n<style>\n{css}\n</style>\n</head>\n\
         <body class=\"viz-root\">\n<h1>{title}</h1>\n{body}\n\
         <footer>{footer}</footer>\n</body>\n</html>\n",
        title = esc(title),
        css = CSS,
        body = body,
        footer = footer,
    )
}

/// Inline stylesheet: CSS custom properties per role, light values by
/// default, dark values under `prefers-color-scheme` and a `data-theme`
/// override (toggle beats OS setting both ways).
const CSS: &str = "\
:root { color-scheme: light; }
.viz-root {
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --text-muted: #898781;
  --gridline: #e1e0d9; --baseline: #c3c2b7;
  --series-1: #2a78d6; --series-2: #eb6834;
  --status-good: #0ca30c; --status-critical: #d03b3b;
  background: var(--page); color: var(--text-primary);
  font-family: system-ui, -apple-system, \"Segoe UI\", sans-serif;
  margin: 0; padding: 24px; line-height: 1.45;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme=\"light\"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --text-muted: #898781;
    --gridline: #2c2c2a; --baseline: #383835;
    --series-1: #3987e5; --series-2: #d95926;
  }
}
:root[data-theme=\"dark\"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19; --page: #0d0d0d;
  --text-primary: #ffffff; --text-secondary: #c3c2b7; --text-muted: #898781;
  --gridline: #2c2c2a; --baseline: #383835;
  --series-1: #3987e5; --series-2: #d95926;
}
h1 { font-size: 20px; margin: 0 0 16px; }
h2 { font-size: 15px; margin: 28px 0 10px; color: var(--text-secondary); }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile { background: var(--surface-1); border: 1px solid var(--gridline);
  border-radius: 8px; padding: 12px 18px; min-width: 120px; }
.tile-value { font-size: 22px; }
.tile-label { font-size: 12px; color: var(--text-muted); }
.panels { display: flex; flex-wrap: wrap; gap: 12px; }
.panel { background: var(--surface-1); border: 1px solid var(--gridline);
  border-radius: 8px; padding: 10px 14px; }
.panel-head { display: flex; justify-content: space-between; gap: 16px;
  margin-bottom: 4px; }
.panel-title { font-size: 13px; color: var(--text-secondary); }
.panel-value { font-size: 13px; color: var(--text-primary); }
.axis { stroke: var(--baseline); stroke-width: 1; }
table { border-collapse: collapse; background: var(--surface-1);
  border: 1px solid var(--gridline); border-radius: 8px; font-size: 13px; }
th, td { padding: 6px 14px; text-align: left;
  border-bottom: 1px solid var(--gridline); }
th { color: var(--text-muted); font-weight: 500; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.ok { color: var(--status-good); }
.bad { color: var(--status-critical); }
.muted { color: var(--text-muted); }
footer { margin-top: 32px; font-size: 12px; color: var(--text-muted); }
";

#[cfg(test)]
mod tests {
    use super::*;

    fn run(seq: u64, lp_solve_ms: f64) -> LedgerRecord {
        LedgerRecord {
            seq,
            kind: "run".to_string(),
            command: "profile".to_string(),
            elapsed_ms: lp_solve_ms * 3.0,
            peak_rss_kb: 40_000 + seq * 100,
            peak_live_bytes: 8_000_000 + seq * 1000,
            alloc_calls: 1_000_000 + seq,
            stages_ms: vec![
                ("lp_solve".to_string(), lp_solve_ms),
                ("simulate".to_string(), lp_solve_ms / 2.0),
            ],
            objectives: vec![("H_LP/d".to_string(), 6950481.0)],
            ..LedgerRecord::default()
        }
    }

    #[test]
    fn dash_is_self_contained_with_trend_sparklines() {
        let records = vec![run(1, 100.0), run(2, 104.0), run(3, 98.0)];
        let html = render_dash(&records, "coflow runs");
        // Self-contained: no external fetches of any kind.
        for needle in ["http://", "https://", "src=", "@import", "url("] {
            assert!(!html.contains(needle), "external reference via {:?}", needle);
        }
        // At least two sparklines (one per stage + memory panels).
        assert!(html.matches("<svg").count() >= 2, "needs >= 2 sparklines");
        assert!(html.contains("<polyline"));
        // Dark mode is authored, not auto-flipped.
        assert!(html.contains("prefers-color-scheme: dark"));
        assert!(html.contains("data-theme"));
        assert!(html.contains("lp_solve"));
    }

    #[test]
    fn regression_dots_mark_tolerance_jumps() {
        // seq 3 jumps +100% and > 10 ms over seq 2: annotated.
        let records = vec![run(1, 100.0), run(2, 100.0), run(3, 200.0)];
        let html = render_dash(&records, "t");
        assert!(html.contains("— regression"));
        // Flat history: no annotation.
        let flat = vec![run(1, 100.0), run(2, 100.0), run(3, 100.0)];
        assert!(!render_dash(&flat, "t").contains("— regression"));
    }

    fn tournament_run(seq: u64, sg_ratio: f64) -> LedgerRecord {
        LedgerRecord {
            seq,
            kind: "run".to_string(),
            command: "tournament".to_string(),
            stages_ms: vec![("shafiee-ghaderi".to_string(), 4.0)],
            objectives: vec![
                ("twct/shafiee-ghaderi".to_string(), 12345.0),
                ("ratio/shafiee-ghaderi".to_string(), sg_ratio),
                ("twct/im-purohit".to_string(), 12000.0),
                ("ratio/im-purohit".to_string(), 1.1),
            ],
            ..LedgerRecord::default()
        }
    }

    #[test]
    fn tournament_ratio_sparklines_render_per_policy() {
        let records = vec![run(1, 100.0), tournament_run(2, 1.21), tournament_run(3, 1.24)];
        let html = render_dash(&records, "t");
        assert!(html.contains("Tournament TWCT ratios"));
        assert!(html.contains("shafiee-ghaderi ratio"));
        assert!(html.contains("im-purohit ratio"));
        // Ratio values keep their precision in the direct labels.
        assert!(html.contains("1.240"));
        // No tournament runs -> no empty section header.
        let html = render_dash(&[run(1, 100.0)], "t");
        assert!(!html.contains("Tournament TWCT ratios"));
    }

    #[test]
    fn objective_table_marks_bit_identical_cells() {
        let records = vec![run(1, 100.0), run(2, 100.0)];
        let html = render_dash(&records, "t");
        assert!(html.contains("bit-identical"));
        let mut drift = vec![run(1, 100.0), run(2, 100.0)];
        drift[1].objectives[0].1 = 6950482.0;
        let html = render_dash(&drift, "t");
        assert!(html.contains("changed"));
    }

    #[test]
    fn verdicts_render_with_icon_and_label() {
        let mut records = vec![run(1, 100.0)];
        records.push(LedgerRecord {
            seq: 2,
            kind: "verdict".to_string(),
            command: "check-perf".to_string(),
            verdicts: vec![("overall".to_string(), "fail".to_string())],
            ..LedgerRecord::default()
        });
        let html = render_dash(&records, "t");
        // Status is never color-alone: icon + word accompany the class.
        assert!(html.contains("&#10007; fail"));
        // Hostile strings in labels stay escaped.
        let mut hostile = vec![run(1, 100.0)];
        hostile[0].command = "<script>alert(1)</script>".to_string();
        let html = render_dash(&hostile, "<t>");
        assert!(!html.contains("<script>alert"));
    }
}
