//! Table 1 (Appendix D): normalized total weighted completion times for
//! 3 orders × 4 scheduling cases × 3 width filters × 2 weight schemes.
//!
//! Normalization matches the paper: every value is divided by the cost of
//! case (d) under `H_LP` for the same filter and weight scheme.

use crate::grid::{run_grid, GridResults, CASES};
use coflow::ordering::OrderRule;
use coflow::Instance;
use coflow_workloads::{assign_weights, filter_by_width, WeightScheme};

/// The paper's width filters, in Table 1 order.
pub const WIDTH_FILTERS: [usize; 3] = [50, 40, 30];

/// One (filter, weight-scheme) block of Table 1.
#[derive(Clone, Debug)]
pub struct Table1Block {
    /// The `M0 ≥ filter` threshold.
    pub filter: usize,
    /// Weight scheme name ("equal" / "random").
    pub weights: &'static str,
    /// Number of coflows surviving the filter.
    pub num_coflows: usize,
    /// Normalized objective per (order, case): indexed
    /// `[order][case]` in the order of [`ORDERS`] and [`CASES`].
    pub normalized: Vec<Vec<f64>>,
    /// Raw objectives in the same layout.
    pub raw: Vec<Vec<f64>>,
}

/// The orders in Table 1 column order.
pub const ORDERS: [OrderRule; 3] = [
    OrderRule::Arrival,
    OrderRule::LoadOverWeight,
    OrderRule::LpBased,
];

/// Runs one Table 1 block: filter the trace, assign weights, run the grid,
/// and normalize by (H_LP, d).
pub fn run_block(trace: &Instance, filter: usize, scheme: WeightScheme) -> Table1Block {
    let filtered = filter_by_width(trace, filter);
    let weighted = assign_weights(&filtered, scheme);
    let grid: GridResults = run_grid(&weighted, &ORDERS);
    let denom = grid[&(OrderRule::LpBased, true, true)].objective;
    assert!(denom > 0.0, "normalizer must be positive");
    let raw: Vec<Vec<f64>> = ORDERS
        .iter()
        .map(|&rule| {
            CASES
                .iter()
                .map(|&(g, b)| grid[&(rule, g, b)].objective)
                .collect()
        })
        .collect();
    let normalized = raw
        .iter()
        .map(|row| row.iter().map(|&v| v / denom).collect())
        .collect();
    Table1Block {
        filter,
        weights: scheme.name(),
        num_coflows: weighted.len(),
        normalized,
        raw,
    }
}

/// Runs the full Table 1: all width filters × both weight schemes.
pub fn run_table1(trace: &Instance, weight_seed: u64) -> Vec<Table1Block> {
    let mut blocks = Vec::new();
    for &filter in &WIDTH_FILTERS {
        for scheme in [
            WeightScheme::Equal,
            WeightScheme::RandomPermutation { seed: weight_seed },
        ] {
            blocks.push(run_block(trace, filter, scheme));
        }
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use coflow_workloads::{generate_trace, TraceConfig};

    #[test]
    fn block_normalizes_to_hlp_case_d() {
        let trace = generate_trace(&TraceConfig::small(4));
        let block = run_block(&trace, 0, WeightScheme::Equal);
        // (H_LP, d) is ORDERS[2], CASES[3] -> normalized exactly 1.
        assert!((block.normalized[2][3] - 1.0).abs() < 1e-12);
        // All raw objectives positive.
        assert!(block.raw.iter().flatten().all(|&v| v > 0.0));
    }

    #[test]
    fn filters_reduce_coflow_count_monotonically() {
        let trace = generate_trace(&TraceConfig::small(5));
        let b10 = run_block(&trace, 10, WeightScheme::Equal);
        let b2 = run_block(&trace, 2, WeightScheme::Equal);
        assert!(b10.num_coflows <= b2.num_coflows);
    }
}
