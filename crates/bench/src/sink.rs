//! Shared report sink for the bench harnesses.
//!
//! Every JSON report in this crate (`coflow-bench-grid/3`,
//! `coflow-diagnostics/1`, `coflow-chaos/1`, `coflow-fault-policies/1`,
//! `coflow-bench-mem/1`) historically hand-rolled the same skeleton —
//! open brace, schema tag, scalar header fields, body sections, atomic
//! write. [`JsonDoc`] centralizes the skeleton (schema tagging, field
//! separators, the trailing newline) while leaving body sections as
//! pre-rendered raw JSON, so each report keeps full control of its layout
//! (the explain golden test pins exact bytes).
//!
//! [`write_json_report`] is the one write path: atomic temp-file +
//! rename via [`obs::atomic_write`], plus a `source:"report"` breadcrumb
//! on the NDJSON telemetry stream when one is installed — a live tail
//! shows report files landing between engine heartbeats.

use coflow_workloads::json::{self, fmt_f64};

/// A top-level JSON report document under construction: a `schema` tag
/// followed by ordered key/value entries. Values are pre-rendered JSON
/// fragments; multi-line fragments (arrays of cells) nest naturally as
/// long as their continuation lines carry their own indentation.
#[derive(Clone, Debug)]
pub struct JsonDoc {
    entries: Vec<(String, String)>,
    schemas: Vec<String>,
}

impl JsonDoc {
    /// Starts a document tagged with `schema`. A `provenance` header —
    /// git revision, dirty flag, timestamp, and the schema list — renders
    /// immediately after the tag, so every report can be traced back to
    /// the tree that produced it. Golden tests zero it via
    /// [`obs::ledger::set_zero_provenance`] (or `COFLOW_PROVENANCE=zero`)
    /// to stay byte-stable.
    pub fn new(schema: &str) -> Self {
        let mut doc = JsonDoc { entries: Vec::new(), schemas: vec![schema.to_string()] };
        doc.raw("schema", json::quote(schema));
        doc
    }

    /// Extends the provenance schema list — the diff report lists both
    /// compared schemas alongside its own.
    pub fn add_schemas(&mut self, extra: &[&str]) -> &mut Self {
        for s in extra {
            if !self.schemas.iter().any(|have| have == s) {
                self.schemas.push(s.to_string());
            }
        }
        self
    }

    /// Appends a pre-rendered JSON value (object, array, or literal).
    pub fn raw(&mut self, key: &str, value: impl Into<String>) -> &mut Self {
        self.entries.push((key.to_string(), value.into()));
        self
    }

    /// Appends an integer or boolean (anything rendering as a bare JSON
    /// literal via `Display`).
    pub fn num(&mut self, key: &str, value: impl std::fmt::Display) -> &mut Self {
        self.raw(key, value.to_string())
    }

    /// Appends a float, formatted for exact round-trips.
    pub fn float(&mut self, key: &str, value: f64) -> &mut Self {
        self.raw(key, fmt_f64(value))
    }

    /// Appends a quoted, escaped string.
    pub fn text(&mut self, key: &str, value: &str) -> &mut Self {
        self.raw(key, json::quote(value))
    }

    /// Renders the document: two-space-indented entries, one per line,
    /// with a trailing newline (the historical report shape). The
    /// provenance header is rendered right after the schema tag.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        let provenance = ("provenance".to_string(), render_provenance(&self.schemas));
        let n = self.entries.len() + 1;
        let all = self.entries.iter().take(1).chain(
            std::iter::once(&provenance).chain(self.entries.iter().skip(1)),
        );
        for (i, (key, value)) in all.enumerate() {
            out.push_str("  ");
            out.push_str(&json::quote(key));
            out.push_str(": ");
            out.push_str(value);
            out.push_str(if i + 1 < n { ",\n" } else { "\n" });
        }
        out.push_str("}\n");
        out
    }
}

/// Renders the shared provenance object carried by every report: git rev,
/// dirty flag, unix timestamp, and the schemas the document speaks.
/// Zeroed (rev `0000000000`, ts 0) under `COFLOW_PROVENANCE=zero` so
/// golden files stay byte-stable.
fn render_provenance(schemas: &[String]) -> String {
    let prov = obs::ledger::git_provenance();
    let list: Vec<String> = schemas.iter().map(|s| json::quote(s)).collect();
    format!(
        "{{\"git_rev\": {}, \"git_dirty\": {}, \"ts\": {}, \"schemas\": [{}]}}",
        json::quote(&prov.git_rev),
        prov.git_dirty,
        obs::ledger::unix_ts(),
        list.join(", ")
    )
}

/// Writes a rendered report to `path` atomically (temp file + rename) and,
/// when a telemetry sink is installed, appends a `source:"report"`
/// heartbeat naming `what` and the path. Returns a displayable error on
/// I/O failure; the caller decides the exit path.
pub fn write_json_report(path: &str, what: &str, contents: &str) -> Result<(), String> {
    obs::atomic_write(path, contents).map_err(|e| e.to_string())?;
    if obs::telemetry::active() {
        let label = format!("{} -> {}", what, path);
        obs::telemetry::emit(&obs::telemetry::Sample {
            source: "report",
            label: &label,
            ..Default::default()
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use coflow_workloads::json::JsonValue;

    #[test]
    fn doc_renders_schema_then_provenance_with_exact_layout() {
        obs::ledger::set_zero_provenance(true);
        let mut doc = JsonDoc::new("coflow-test/1");
        doc.num("seed", 7u64).float("ratio", 1.5).text("name", "x\"y");
        doc.raw("cells", "[\n    {\"a\": 1}\n  ]");
        let text = doc.render();
        assert!(text.starts_with(
            "{\n  \"schema\": \"coflow-test/1\",\n  \"provenance\": \
             {\"git_rev\": \"0000000000\", \"git_dirty\": false, \"ts\": 0, \
             \"schemas\": [\"coflow-test/1\"]},\n  \"seed\": 7,\n"
        ));
        assert!(text.ends_with("  \"cells\": [\n    {\"a\": 1}\n  ]\n}\n"));
        let parsed = json::parse(&text).expect("valid JSON");
        assert_eq!(parsed.get("schema"), Some(&JsonValue::Str("coflow-test/1".into())));
        assert_eq!(parsed.get("ratio"), Some(&JsonValue::Num("1.5".into())));
        assert_eq!(parsed.get("name"), Some(&JsonValue::Str("x\"y".into())));
        let prov = parsed.get("provenance").expect("provenance present");
        assert_eq!(prov.get("git_rev"), Some(&JsonValue::Str("0000000000".into())));
        // stay zeroed: tests run in parallel and none asserts live provenance
    }

    #[test]
    fn add_schemas_extends_the_provenance_list_without_duplicates() {
        obs::ledger::set_zero_provenance(true);
        let mut doc = JsonDoc::new("coflow-diff/1");
        doc.add_schemas(&["coflow-ledger/1", "coflow-diff/1"]);
        let parsed = json::parse(&doc.render()).expect("valid JSON");
        let prov = parsed.get("provenance").expect("provenance present");
        match prov.get("schemas") {
            Some(JsonValue::Arr(items)) => {
                let names: Vec<_> = items
                    .iter()
                    .filter_map(|v| match v {
                        JsonValue::Str(s) => Some(s.as_str()),
                        _ => None,
                    })
                    .collect();
                assert_eq!(names, ["coflow-diff/1", "coflow-ledger/1"]);
            }
            other => panic!("schemas not an array: {:?}", other),
        }
        // stay zeroed: tests run in parallel and none asserts live provenance
    }

    #[test]
    fn write_json_report_is_atomic_and_surfaces_errors() {
        let dir = std::env::temp_dir().join("coflow-sink-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        let path = path.to_str().unwrap();
        write_json_report(path, "test report", "{\"schema\": \"t/1\"}\n").expect("write");
        assert_eq!(std::fs::read_to_string(path).unwrap(), "{\"schema\": \"t/1\"}\n");
        assert!(write_json_report("/nonexistent-dir/x.json", "test", "{}").is_err());
    }
}
