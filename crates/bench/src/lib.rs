//! Experiment harness: regenerates every table and figure of §4 /
//! Appendix D of the paper on the synthetic Facebook-like trace.
//!
//! * [`grid`] — runs the 12-algorithm grid (3 orders × 4 scheduling cases);
//! * [`table1`] — Appendix D Table 1: normalized total weighted completion
//!   times across the `M0` filters and weight schemes;
//! * [`figures`] — Figure 2a (grouping/backfilling gains vs the base case)
//!   and Figure 2b (order comparison under grouping + backfilling);
//! * [`lowerbound`] — the §4.2 LP-EXP near-optimality certificate;
//! * [`ratios`] — measured approximation ratios against the exact optimum
//!   on tiny instances (validating Theorems 1–2 empirically);
//! * [`profile`] — per-stage timing/counter profile of the grid
//!   (`BENCH_grid.json`, baseline regression checks);
//! * [`explain`] — schedule forensics over the grid: per-coflow LP
//!   attribution, anomaly detectors, `coflow-diagnostics/1` reports;
//! * [`pins`] — bit-identical objective pins (`BENCH_pins.json`) gating
//!   the engine's grid/online/greedy/fault cells in `check-perf.sh`;
//! * [`scale`] — the streaming scale sweep (`BENCH_scale.json`): windowed
//!   admission over [`coflow_workloads::stream`] workloads up to 10⁶
//!   coflows and 10,000 ports, gated by `check-scale.sh`;
//! * [`report`] — plain-text table rendering.

pub mod arrivals;
pub mod chaos;
pub mod dash;
pub mod diff;
pub mod explain;
pub mod faults;
pub mod figures;
pub mod grid;
pub mod gridsweep;
pub mod integrality;
pub mod ledger;
pub mod lowerbound;
pub mod pins;
pub mod profile;
pub mod ratios;
pub mod report;
pub mod scale;
pub mod sink;
pub mod table1;
pub mod tournament;

use coflow_workloads::TraceConfig;

/// The trace configuration used by the headline experiments.
///
/// **Scale substitution (documented in EXPERIMENTS.md):** the paper's
/// cluster is 150 racks; the experiments here default to a 60-port fabric
/// with proportionally scaled coflow counts so that the interval-indexed LP
/// solves in seconds with the from-scratch simplex. The full 150-rack
/// generator is available via [`coflow_workloads::TraceConfig::default`].
pub fn paper_scale_config(seed: u64) -> TraceConfig {
    TraceConfig {
        ports: 60,
        num_coflows: 150,
        seed,
        flow_size_mu: 1.9,
        flow_size_sigma: 1.1,
        max_flow_size: 2048,
        coflow_scale_sigma: 2.2,
        fanout_alpha: 0.7,
        ..TraceConfig::default()
    }
}

/// A smaller configuration for criterion benchmarks and CI-speed tests.
pub fn bench_scale_config(seed: u64) -> TraceConfig {
    TraceConfig {
        ports: 24,
        num_coflows: 36,
        seed,
        flow_size_mu: 1.5,
        flow_size_sigma: 0.9,
        max_flow_size: 128,
        ..TraceConfig::default()
    }
}
