//! Empirical approximation ratios against the exact optimum.
//!
//! Theorems 1–2 guarantee worst-case ratios of 67/3 (deterministic) and
//! 9 + 16√2/3 (randomized); Corollaries 1–2 give 64/3 and 8 + 16√2/3 for
//! zero release dates. This experiment measures the ratios actually
//! achieved on random tiny instances (where the exact optimum is
//! computable), echoing the paper's observation that practice is far from
//! the worst case.

use coflow::ordering::OrderRule;
use coflow::sched::optimal::optimal_objective;
use coflow::sched::{run, run_randomized, AlgorithmSpec};
use coflow_workloads::random_instance;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Measured ratios over a batch of random tiny instances.
#[derive(Clone, Debug)]
pub struct RatioReport {
    /// Number of instances evaluated.
    pub instances: usize,
    /// Mean deterministic (Algorithm 2) ratio.
    pub det_mean: f64,
    /// Worst deterministic ratio observed.
    pub det_max: f64,
    /// Mean randomized-algorithm ratio (average over samples per instance).
    pub rand_mean: f64,
    /// Worst randomized sample ratio observed.
    pub rand_max: f64,
    /// The proven deterministic bound for zero releases (64/3).
    pub det_bound: f64,
    /// The proven randomized bound for zero releases (8 + 16√2/3).
    pub rand_bound: f64,
}

/// Measures approximation ratios on `instances` random 2×2 instances with
/// 2–3 coflows each (small enough for the exact DP).
pub fn run_ratios(instances: usize, seed: u64) -> RatioReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut det_ratios = Vec::with_capacity(instances);
    let mut rand_ratios = Vec::new();
    for t in 0..instances {
        let n = 2 + (t % 2);
        let inst = random_instance(2, n, 0.6, 3, seed.wrapping_add(t as u64));
        let opt = optimal_objective(&inst);
        assert!(opt > 0.0);
        let det = run(&inst, &AlgorithmSpec::algorithm2());
        det_ratios.push(det.objective / opt);
        for _ in 0..4 {
            let r = run_randomized(&inst, OrderRule::LpBased, false, &mut rng);
            rand_ratios.push(r.objective / opt);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let max = |v: &[f64]| v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    RatioReport {
        instances,
        det_mean: mean(&det_ratios),
        det_max: max(&det_ratios),
        rand_mean: mean(&rand_ratios),
        rand_max: max(&rand_ratios),
        det_bound: coflow::DETERMINISTIC_RATIO_NO_RELEASE,
        rand_bound: coflow::randomized_ratio_no_release(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_ratios_respect_proven_bounds() {
        let report = run_ratios(12, 99);
        assert!(report.det_max <= report.det_bound + 1e-9);
        assert!(report.rand_max <= report.rand_bound + 1e-9);
        // The paper's empirical finding: performance is near-optimal, far
        // below the worst-case guarantee.
        assert!(report.det_mean < 3.0, "det mean ratio {}", report.det_mean);
        assert!(report.det_mean >= 1.0 - 1e-9);
    }
}
