//! Release-date experiment (extension).
//!
//! The paper's theory covers release dates (Theorems 1–2) but its
//! experiments assume all coflows arrive at time 0 and it lists "include
//! varying release dates" as future work. This experiment runs the grid on
//! a trace with Poisson arrivals and compares the offline algorithms (which
//! see the whole instance up front but respect releases) against the
//! legitimately online ρ/w-priority scheduler.

use crate::grid::{case_label, run_grid, CASES};
use crate::table1::ORDERS;
use coflow::bounds::interval_lp_bound;
use coflow::sched::online::run_online_opts;
use coflow::{Instance, OnlineOptions};
use coflow_workloads::{assign_weights, generate_trace, TraceConfig, WeightScheme};

/// Results of the arrivals experiment.
#[derive(Clone, Debug)]
pub struct ArrivalsReport {
    /// `(order name, case, objective)` for the offline grid.
    pub grid: Vec<(&'static str, &'static str, f64)>,
    /// Objective of the online ρ/w scheduler (priorities re-sorted at
    /// completion epochs too — the fixed behavior).
    pub online_cost: f64,
    /// Objective of the legacy online scheduler, which re-sorted only on
    /// arrivals and so could serve stale priorities between them.
    pub online_stale_cost: f64,
    /// Interval-LP lower bound (valid with release dates).
    pub lower_bound: f64,
    /// Mean release date of the instance.
    pub mean_release: f64,
}

/// Builds the arrivals instance at the given scale.
pub fn arrivals_instance(ports: usize, num_coflows: usize, seed: u64) -> Instance {
    let cfg = TraceConfig {
        ports,
        num_coflows,
        seed,
        zero_release: false,
        mean_interarrival: 40.0,
        max_flow_size: 128,
        ..TraceConfig::default()
    };
    assign_weights(
        &generate_trace(&cfg),
        WeightScheme::RandomPermutation { seed },
    )
}

/// Runs the experiment.
pub fn run_arrivals(instance: &Instance) -> ArrivalsReport {
    let grid = run_grid(instance, &ORDERS);
    let mut rows = Vec::new();
    for &rule in &ORDERS {
        for &(g, b) in &CASES {
            rows.push((rule.name(), case_label(g, b), grid[&(rule, g, b)].objective));
        }
    }
    let online = run_online_opts(instance, OnlineOptions::default());
    let online_stale = run_online_opts(instance, OnlineOptions::legacy());
    let lower_bound = interval_lp_bound(instance);
    let mean_release = instance
        .coflows()
        .iter()
        .map(|c| c.release as f64)
        .sum::<f64>()
        / instance.len() as f64;
    ArrivalsReport {
        grid: rows,
        online_cost: online.objective,
        online_stale_cost: online_stale.objective,
        lower_bound,
        mean_release,
    }
}

/// Renders the report.
pub fn render_arrivals(r: &ArrivalsReport) -> String {
    let mut out = format!(
        "Release-date experiment (mean release {:.0} slots)\n\
         \x20 interval-LP lower bound: {:.0}\n",
        r.mean_release, r.lower_bound
    );
    out.push_str("  order  case | objective | /bound\n");
    for (order, case, obj) in &r.grid {
        out.push_str(&format!(
            "  {:<5} ({})  | {:>9.0} | {:>5.2}\n",
            order,
            case,
            obj,
            obj / r.lower_bound
        ));
    }
    out.push_str(&format!(
        "  online rho/w | {:>9.0} | {:>5.2}  (sees only released coflows)\n",
        r.online_cost,
        r.online_cost / r.lower_bound
    ));
    out.push_str(&format!(
        "  online stale | {:>9.0} | {:>5.2}  (legacy: re-sorts on arrivals only, {:+.2}% vs fixed)\n",
        r.online_stale_cost,
        r.online_stale_cost / r.lower_bound,
        100.0 * (r.online_stale_cost - r.online_cost) / r.online_cost,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_experiment_is_consistent() {
        let inst = arrivals_instance(12, 16, 33);
        assert!(inst.coflows().iter().any(|c| c.release > 0));
        let report = run_arrivals(&inst);
        assert_eq!(report.grid.len(), 12);
        for (_, _, obj) in &report.grid {
            assert!(report.lower_bound <= obj + 1e-6, "bound violated");
        }
        assert!(report.lower_bound <= report.online_cost + 1e-6);
        assert!(report.lower_bound <= report.online_stale_cost + 1e-6);
    }

    #[test]
    fn online_is_competitive_with_offline_base_case() {
        // The online scheduler lacks the LP but is work conserving; it
        // should not be more than ~3x the best offline grid cell on a small
        // arrivals instance (typically it is well under 1.5x).
        let inst = arrivals_instance(10, 12, 5);
        let report = run_arrivals(&inst);
        let best_offline = report
            .grid
            .iter()
            .map(|&(_, _, o)| o)
            .fold(f64::INFINITY, f64::min);
        assert!(
            report.online_cost <= 3.0 * best_offline,
            "online at {} vs best offline {}",
            report.online_cost,
            best_offline
        );
    }
}
