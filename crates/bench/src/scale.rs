//! The scale sweep: ports × coflows → wall-clock, peak RSS, per-stage
//! attribution (`BENCH_scale.json`, schema `coflow-bench-scale/1`).
//!
//! Every other harness in this crate materializes a full
//! [`coflow::Instance`] and runs the LP/BvN pipeline end to end — fine at
//! the paper's 150 ports, hopeless at 10,000 ports and 10⁶ coflows. The
//! scale runner instead composes the sub-quadratic pieces this repo grew
//! for exactly this purpose:
//!
//! * **streaming generation** — [`coflow_workloads::CoflowStream`] yields
//!   sparse coflows one at a time; the full trace never exists in memory;
//! * **windowed admission** — coflows are admitted in fixed-size windows;
//!   each window is ordered and released to the executor before the next
//!   window is drawn, so memory is bounded by the window, not the run;
//! * **ordering ladder** — fabrics up to [`LP_PORT_LIMIT`] ports order
//!   each window with the sparse windowed interval LP
//!   ([`coflow::try_solve_windowed_sparse`], which shards the solve by
//!   port-connected component); larger fabrics use the `H_ρ`-style
//!   Smith-rule order on sparse loads (`ρ_k / w_k` ascending), which needs
//!   only the per-port load lists;
//! * **sparse execution** — [`SparseExecutor`] keeps one `free` time per
//!   ingress and egress port and schedules each flow contiguously at the
//!   earliest slot both its ports are free, in window order: O(1) per
//!   flow, O(m) state, no demand matrix and no slot-by-slot simulation.
//!
//! Per cell the report records the objective (deterministic, compared
//! bit-exactly by the gate), the makespan, per-stage wall-clock
//! (`gen`/`order`/`execute`), and the allocator view (peak live bytes,
//! kernel peak RSS, allocation calls/bytes). [`compare_scale`] gates a
//! fresh run against the committed baseline with the same two-sided
//! rules as the grid gate: a fractional tolerance *and* an absolute
//! noise floor, both of which must be breached. `scripts/check-scale.sh`
//! runs the m=1,000 / 10k-coflow cell against `BENCH_scale.json`.

use crate::profile::{ABS_FLOOR_MS, MEM_ALLOC_FLOOR, MEM_BYTES_FLOOR};
use coflow::{try_solve_windowed_sparse, SparseCoflowLoads};
use coflow_lp::SimplexOptions;
use coflow_workloads::json::{self, fmt_f64, JsonValue};
use coflow_workloads::{CoflowStream, SparseCoflow, StreamConfig};
use std::fmt::Write as _;
use std::time::Instant;

/// Schema tag of the scale report; bump on breaking layout changes.
pub const SCHEMA: &str = "coflow-bench-scale/1";

/// Stage keys of the per-cell `stages_ms` object, in report order.
pub const SCALE_STAGES: [&str; 4] = ["gen", "order", "execute", "total"];

/// Largest fabric the windowed-LP ordering mode is engaged on; beyond it
/// the per-port LP rows alone dwarf the window and the Smith-rule order
/// takes over.
pub const LP_PORT_LIMIT: usize = 128;

/// Admission window of the LP ordering mode. Smaller than the default
/// window: the interval LP is cubic-ish in the window size, and 64
/// coflows per solve keeps every solve sub-second while the component
/// sharding inside [`coflow::try_solve_windowed_sparse`] still gets
/// blocks to split.
pub const LP_WINDOW: usize = 64;

/// Default admission window of the Smith-rule mode.
pub const DEFAULT_WINDOW: usize = 512;

/// Default sweep cells `(ports, coflows)`: the committed
/// `BENCH_scale.json` curve. The second cell is the gate cell of
/// `scripts/check-scale.sh`; the last streams 10⁶ coflows over the
/// 10,000-port fabric.
pub const DEFAULT_CELLS: [(usize, usize); 5] = [
    (100, 10_000),
    (1_000, 10_000),
    (1_000, 100_000),
    (10_000, 100_000),
    (10_000, 1_000_000),
];

/// The ordering mode a cell ran under (the ladder is decided by fabric
/// size, so baselines and fresh runs can never disagree about it).
pub fn mode_for(ports: usize) -> &'static str {
    if ports <= LP_PORT_LIMIT {
        "windowed-lp"
    } else {
        "rho"
    }
}

/// Stable cell label used by the gate, the diff sides, and the ledger
/// objectives (e.g. `m=1000/n=10000`).
pub fn cell_label(ports: usize, coflows: usize) -> String {
    format!("m={}/n={}", ports, coflows)
}

/// Port-exclusive sparse executor: one `free` time per ingress and egress
/// port. Each flow is scheduled contiguously at the earliest slot both of
/// its ports are free (and the coflow is released); a port serves one
/// flow at a time, so the produced schedule is feasible on the switch by
/// construction. State is O(m) and persists across windows — the arrays
/// are the entire executor.
pub struct SparseExecutor {
    free_in: Vec<u64>,
    free_out: Vec<u64>,
}

impl SparseExecutor {
    /// A fresh executor over an `m × m` fabric with all ports free at 0.
    pub fn new(m: usize) -> Self {
        SparseExecutor {
            free_in: vec![0; m],
            free_out: vec![0; m],
        }
    }

    /// Schedules every flow of `c` in list order; returns the coflow's
    /// completion time (max flow end, at least the release date).
    pub fn run(&mut self, c: &SparseCoflow) -> u64 {
        let mut completion = c.release;
        for &(i, j, units) in &c.flows {
            let start = self.free_in[i].max(self.free_out[j]).max(c.release);
            let end = start + units;
            self.free_in[i] = end;
            self.free_out[j] = end;
            completion = completion.max(end);
        }
        completion
    }

    /// Latest busy slot across all ports — the schedule makespan so far.
    pub fn horizon(&self) -> u64 {
        self.free_in
            .iter()
            .chain(&self.free_out)
            .copied()
            .max()
            .unwrap_or(0)
    }
}

/// One cell of the sweep.
#[derive(Clone, Debug)]
pub struct ScaleCell {
    /// Fabric size.
    pub ports: usize,
    /// Coflows streamed through the cell.
    pub coflows: usize,
    /// Ordering mode (`windowed-lp` or `rho`; see [`mode_for`]).
    pub mode: &'static str,
    /// Admission window actually used.
    pub window: usize,
    /// Windows processed.
    pub windows: u64,
    /// Port-connected LP groups solved (windowed-lp mode; 0 otherwise).
    pub lp_groups: u64,
    /// Windows where the LP solve failed and the Smith-rule order was
    /// used instead (budget exhaustion; always 0 in practice).
    pub lp_fallbacks: u64,
    /// Total weighted completion time of the streamed schedule.
    pub objective: f64,
    /// Schedule makespan (executor horizon after the last window).
    pub makespan: u64,
    /// Time drawing coflows from the stream, ms.
    pub gen_ms: f64,
    /// Time ordering windows, ms.
    pub order_ms: f64,
    /// Time executing flows, ms.
    pub execute_ms: f64,
    /// Whole cell wall-clock, ms.
    pub total_ms: f64,
    /// High-water mark of live bytes inside the cell window.
    pub peak_live_bytes: u64,
    /// Kernel peak RSS (`VmHWM`, kB) at cell end; 0 when unavailable.
    pub peak_rss_kb: u64,
    /// Allocation calls during the cell.
    pub alloc_calls: u64,
    /// Bytes allocated during the cell.
    pub alloc_bytes: u64,
}

impl ScaleCell {
    /// Stage value by report key ([`SCALE_STAGES`]).
    pub fn stage(&self, key: &str) -> f64 {
        match key {
            "gen" => self.gen_ms,
            "order" => self.order_ms,
            "execute" => self.execute_ms,
            "total" => self.total_ms,
            other => panic!("unknown scale stage '{}'", other),
        }
    }
}

/// A full sweep: config identity plus one entry per cell.
#[derive(Clone, Debug)]
pub struct ScaleReport {
    /// Stream seed shared by every cell.
    pub seed: u64,
    /// Requested admission window (LP cells clamp to [`LP_WINDOW`]).
    pub window: usize,
    /// The swept cells, in run order.
    pub cells: Vec<ScaleCell>,
}

/// Smith-rule order of a window: `ρ_k / w_k` ascending, ties by window
/// index. The `H_ρ` analog on sparse loads — no matrix, no LP. Keys are
/// precomputed once per coflow: `rho()` walks the flow list, and calling
/// it inside the comparator would repeat that walk O(log W) times per
/// coflow.
pub(crate) fn smith_order(window: &[SparseCoflow]) -> Vec<usize> {
    let keys: Vec<f64> = window.iter().map(|c| c.rho() as f64 / c.weight).collect();
    let mut order: Vec<usize> = (0..window.len()).collect();
    order.sort_by(|&a, &b| keys[a].total_cmp(&keys[b]).then(a.cmp(&b)));
    order
}

/// Lifts a streamed coflow into the sparse per-port load view the
/// windowed LP consumes.
pub(crate) fn loads_of(c: &SparseCoflow) -> SparseCoflowLoads {
    let (ingress, egress) = c.port_loads();
    SparseCoflowLoads {
        release: c.release,
        weight: c.weight,
        rho: ingress
            .iter()
            .chain(&egress)
            .map(|&(_, d)| d)
            .max()
            .unwrap_or(0),
        ingress,
        egress,
    }
}

/// Runs one cell: streams `coflows` coflows over the `ports` fabric in
/// admission windows, orders each window by the cell's ladder mode, and
/// executes the ordered flows through the persistent [`SparseExecutor`].
/// Emits one telemetry heartbeat per window when a sink is installed.
pub fn run_scale_cell(ports: usize, coflows: usize, seed: u64, window: usize) -> ScaleCell {
    let mode = mode_for(ports);
    let window = if mode == "windowed-lp" {
        window.min(LP_WINDOW)
    } else {
        window
    };
    let lp_opts = SimplexOptions {
        max_iterations: 200_000,
        time_limit_ms: Some(10_000),
        stall_window: Some(20_000),
        ..SimplexOptions::default()
    };
    obs::alloc::reset_peak();
    let mem_before = obs::alloc::stats();
    let label = cell_label(ports, coflows);
    let started = Instant::now();
    let mut stream = CoflowStream::new(StreamConfig {
        ports,
        num_coflows: coflows,
        seed,
        ..StreamConfig::default()
    });
    let mut exec = SparseExecutor::new(ports);
    let mut cell = ScaleCell {
        ports,
        coflows,
        mode,
        window,
        windows: 0,
        lp_groups: 0,
        lp_fallbacks: 0,
        objective: 0.0,
        makespan: 0,
        gen_ms: 0.0,
        order_ms: 0.0,
        execute_ms: 0.0,
        total_ms: 0.0,
        peak_live_bytes: 0,
        peak_rss_kb: 0,
        alloc_calls: 0,
        alloc_bytes: 0,
    };
    let mut batch: Vec<SparseCoflow> = Vec::with_capacity(window);
    let mut completed: u64 = 0;
    loop {
        // Admission: draw the next window off the stream.
        let t = Instant::now();
        batch.clear();
        while batch.len() < window {
            match stream.next() {
                Some(c) => batch.push(c),
                None => break,
            }
        }
        cell.gen_ms += t.elapsed().as_secs_f64() * 1e3;
        if batch.is_empty() {
            break;
        }
        // Ordering ladder.
        let t = Instant::now();
        let order = if mode == "windowed-lp" {
            let loads: Vec<SparseCoflowLoads> = batch.iter().map(loads_of).collect();
            match try_solve_windowed_sparse(ports, &loads, &lp_opts) {
                Ok(relax) => {
                    cell.lp_groups +=
                        coflow::windowed::sparse_components(ports, &loads).len() as u64;
                    relax.order
                }
                Err(_) => {
                    cell.lp_fallbacks += 1;
                    smith_order(&batch)
                }
            }
        } else {
            smith_order(&batch)
        };
        cell.order_ms += t.elapsed().as_secs_f64() * 1e3;
        // Execution.
        let t = Instant::now();
        for &k in &order {
            let completion = exec.run(&batch[k]);
            cell.objective += batch[k].weight * completion as f64;
        }
        completed += order.len() as u64;
        cell.execute_ms += t.elapsed().as_secs_f64() * 1e3;
        cell.windows += 1;
        if obs::telemetry::active() {
            obs::telemetry::emit(&obs::telemetry::Sample {
                source: "scale",
                label: &label,
                epoch: cell.windows,
                completed_coflows: completed,
                ..Default::default()
            });
        }
    }
    cell.makespan = exec.horizon();
    cell.total_ms = started.elapsed().as_secs_f64() * 1e3;
    let mem_after = obs::alloc::stats();
    cell.peak_live_bytes = mem_after.peak_live_bytes;
    cell.peak_rss_kb = obs::alloc::peak_rss_kb().unwrap_or(0);
    cell.alloc_calls = mem_after.alloc_calls.saturating_sub(mem_before.alloc_calls);
    cell.alloc_bytes = mem_after.alloc_bytes.saturating_sub(mem_before.alloc_bytes);
    cell
}

/// Runs the sweep over `cells` (pairs of `(ports, coflows)`).
pub fn run_scale(cells: &[(usize, usize)], seed: u64, window: usize) -> ScaleReport {
    let mut report = ScaleReport {
        seed,
        window,
        cells: Vec::with_capacity(cells.len()),
    };
    for &(ports, coflows) in cells {
        report.cells.push(run_scale_cell(ports, coflows, seed, window));
    }
    report
}

/// Serializes `report` as `coflow-bench-scale/1` JSON.
pub fn render_scale_json(report: &ScaleReport) -> String {
    let mut cells = String::from("[\n");
    for (idx, cell) in report.cells.iter().enumerate() {
        cells.push_str("    {\n");
        let _ = writeln!(cells, "      \"ports\": {},", cell.ports);
        let _ = writeln!(cells, "      \"coflows\": {},", cell.coflows);
        let _ = writeln!(cells, "      \"mode\": {},", json::quote(cell.mode));
        let _ = writeln!(cells, "      \"window\": {},", cell.window);
        let _ = writeln!(cells, "      \"windows\": {},", cell.windows);
        let _ = writeln!(cells, "      \"lp_groups\": {},", cell.lp_groups);
        let _ = writeln!(cells, "      \"lp_fallbacks\": {},", cell.lp_fallbacks);
        let _ = writeln!(cells, "      \"objective\": {},", fmt_f64(cell.objective));
        let _ = writeln!(cells, "      \"makespan\": {},", cell.makespan);
        cells.push_str("      \"stages_ms\": {");
        for (i, stage) in SCALE_STAGES.iter().enumerate() {
            if i > 0 {
                cells.push_str(", ");
            }
            let _ = write!(cells, "{}: {}", json::quote(stage), fmt_f64(cell.stage(stage)));
        }
        cells.push_str("},\n");
        let _ = writeln!(
            cells,
            "      \"mem\": {{\"peak_live_bytes\": {}, \"peak_rss_kb\": {}, \
             \"alloc_calls\": {}, \"alloc_bytes\": {}}}",
            cell.peak_live_bytes, cell.peak_rss_kb, cell.alloc_calls, cell.alloc_bytes,
        );
        cells.push_str(if idx + 1 < report.cells.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    cells.push_str("  ]");
    let mut doc = crate::sink::JsonDoc::new(SCHEMA);
    doc.num("seed", report.seed)
        .num("window", report.window)
        .raw("cells", cells);
    doc.render()
}

/// Plain-text table of a sweep (stderr-friendly progress report).
pub fn render_scale(report: &ScaleReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== scale sweep: {} cells, window {}, seed {} ==",
        report.cells.len(),
        report.window,
        report.seed
    );
    let _ = writeln!(
        out,
        "{:>6} {:>9} {:<11} {:>8} {:>10} {:>10} {:>10} {:>10} {:>9} {:>10}",
        "ports", "coflows", "mode", "windows", "gen_ms", "order_ms", "exec_ms", "total_ms",
        "rss_MiB", "makespan"
    );
    for c in &report.cells {
        let _ = writeln!(
            out,
            "{:>6} {:>9} {:<11} {:>8} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>9.1} {:>10}",
            c.ports,
            c.coflows,
            c.mode,
            c.windows,
            c.gen_ms,
            c.order_ms,
            c.execute_ms,
            c.total_ms,
            c.peak_rss_kb as f64 / 1024.0,
            c.makespan,
        );
    }
    out
}

/// One compared metric from [`compare_scale`].
#[derive(Clone, Debug)]
pub struct ScaleDelta {
    /// Cell label (`m=1000/n=10000`).
    pub cell: String,
    /// Metric name (`wall_ms`, `alloc_calls`, `alloc_bytes`, `objective`).
    pub metric: &'static str,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// True when the current value breaches the metric's threshold.
    pub regressed: bool,
}

fn num_f64(v: &JsonValue) -> Option<f64> {
    match v {
        JsonValue::Num(s) => s.parse().ok(),
        _ => None,
    }
}

/// One gated cell: `(label, wall_ms, alloc_calls, alloc_bytes, objective)`.
type GatedCell = (String, f64, f64, f64, f64);

/// Extracts one [`GatedCell`] per cell from a parsed scale report.
fn scale_cells(doc: &JsonValue) -> Result<Vec<GatedCell>, String> {
    let Some(JsonValue::Arr(cells)) = doc.get("cells") else {
        return Err("report has no 'cells' array".to_string());
    };
    if cells.is_empty() {
        return Err("report has no cells".to_string());
    }
    let mut out = Vec::with_capacity(cells.len());
    for cell in cells {
        let int = |key: &str| -> Result<f64, String> {
            cell.get(key)
                .and_then(num_f64)
                .ok_or_else(|| format!("cell field '{}' missing or non-numeric", key))
        };
        let ports = int("ports")? as usize;
        let coflows = int("coflows")? as usize;
        let wall = cell
            .get("stages_ms")
            .and_then(|s| s.get("total"))
            .and_then(num_f64)
            .ok_or("cell missing stages_ms.total")?;
        let mem = cell.get("mem").ok_or("cell missing 'mem' object")?;
        let calls = mem
            .get("alloc_calls")
            .and_then(num_f64)
            .ok_or("mem missing alloc_calls")?;
        let bytes = mem
            .get("alloc_bytes")
            .and_then(num_f64)
            .ok_or("mem missing alloc_bytes")?;
        out.push((cell_label(ports, coflows), wall, calls, bytes, int("objective")?));
    }
    Ok(out)
}

/// Compares two serialized scale reports cell by cell (matched on the
/// `m=…/n=…` label, so a gate run of a single cell checks against the
/// full committed curve). Per matched cell:
///
/// * `wall_ms` regresses past `wall_tol` (fractional) **and** the
///   [`ABS_FLOOR_MS`] absolute floor;
/// * `alloc_calls` / `alloc_bytes` regress past `alloc_tol` **and** their
///   [`MEM_ALLOC_FLOOR`] / [`MEM_BYTES_FLOOR`] floors;
/// * `objective` is compared **bit-exactly** — the streamed schedule is
///   deterministic, so any drift is a behavioral change, not noise.
///
/// Cells present on only one side are skipped; no overlap is an error.
pub fn compare_scale(
    baseline: &str,
    current: &str,
    wall_tol: f64,
    alloc_tol: f64,
) -> Result<Vec<ScaleDelta>, String> {
    let base_doc = json::parse(baseline).map_err(|e| format!("baseline: {}", e))?;
    let cur_doc = json::parse(current).map_err(|e| format!("current: {}", e))?;
    for (label, doc) in [("baseline", &base_doc), ("current", &cur_doc)] {
        match doc.get("schema") {
            Some(JsonValue::Str(s)) if s == SCHEMA => {}
            other => {
                return Err(format!(
                    "{}: unsupported schema {:?} (expected {})",
                    label, other, SCHEMA
                ))
            }
        }
    }
    let base = scale_cells(&base_doc).map_err(|e| format!("baseline: {}", e))?;
    let cur = scale_cells(&cur_doc).map_err(|e| format!("current: {}", e))?;
    let mut deltas = Vec::new();
    for (label, wall, calls, bytes, objective) in &cur {
        let Some((_, b_wall, b_calls, b_bytes, b_obj)) =
            base.iter().find(|(l, ..)| l == label)
        else {
            continue;
        };
        deltas.push(ScaleDelta {
            cell: label.clone(),
            metric: "wall_ms",
            baseline: *b_wall,
            current: *wall,
            regressed: *wall > b_wall * (1.0 + wall_tol) && wall - b_wall > ABS_FLOOR_MS,
        });
        deltas.push(ScaleDelta {
            cell: label.clone(),
            metric: "alloc_calls",
            baseline: *b_calls,
            current: *calls,
            regressed: *calls > b_calls * (1.0 + alloc_tol)
                && calls - b_calls > MEM_ALLOC_FLOOR,
        });
        deltas.push(ScaleDelta {
            cell: label.clone(),
            metric: "alloc_bytes",
            baseline: *b_bytes,
            current: *bytes,
            regressed: *bytes > b_bytes * (1.0 + alloc_tol)
                && bytes - b_bytes > MEM_BYTES_FLOOR,
        });
        deltas.push(ScaleDelta {
            cell: label.clone(),
            metric: "objective",
            baseline: *b_obj,
            current: *objective,
            regressed: b_obj.to_bits() != objective.to_bits(),
        });
    }
    if deltas.is_empty() {
        return Err(format!(
            "no cell of the current run matches the baseline (baseline cells: {})",
            base.iter().map(|(l, ..)| l.as_str()).collect::<Vec<_>>().join(", ")
        ));
    }
    Ok(deltas)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> ScaleReport {
        // One LP-laddered cell, one Smith-laddered cell; small enough to
        // run in a debug test.
        run_scale(&[(16, 60), (200, 120)], 11, 32)
    }

    #[test]
    fn ladder_selects_lp_below_the_port_limit() {
        assert_eq!(mode_for(LP_PORT_LIMIT), "windowed-lp");
        assert_eq!(mode_for(LP_PORT_LIMIT + 1), "rho");
        let report = tiny_report();
        assert_eq!(report.cells[0].mode, "windowed-lp");
        assert_eq!(report.cells[0].window, 32.min(LP_WINDOW));
        assert_eq!(report.cells[1].mode, "rho");
        assert_eq!(report.cells[1].window, 32);
    }

    #[test]
    fn cells_schedule_everything_deterministically() {
        let a = tiny_report();
        let b = tiny_report();
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert!(x.objective > 0.0);
            assert!(x.makespan > 0);
            assert!(x.windows > 0);
            assert_eq!(x.lp_fallbacks, 0, "LP budget must hold at test scale");
            assert_eq!(x.objective.to_bits(), y.objective.to_bits());
            assert_eq!(x.makespan, y.makespan);
        }
    }

    #[test]
    fn executor_respects_port_exclusivity_and_releases() {
        let mut exec = SparseExecutor::new(4);
        let a = SparseCoflow {
            id: 0,
            flows: vec![(0, 1, 3), (0, 2, 2)],
            release: 0,
            weight: 1.0,
        };
        // Flows share ingress 0: contiguous, back to back.
        assert_eq!(exec.run(&a), 5);
        // A released-later coflow on free ports starts at its release.
        let b = SparseCoflow {
            id: 1,
            flows: vec![(3, 3, 2)],
            release: 10,
            weight: 1.0,
        };
        assert_eq!(exec.run(&b), 12);
        assert_eq!(exec.horizon(), 12);
    }

    #[test]
    fn report_json_round_trips_and_self_compares_clean() {
        let report = tiny_report();
        let rendered = render_scale_json(&report);
        let doc = json::parse(&rendered).expect("scale JSON must parse");
        assert_eq!(doc.get("schema"), Some(&JsonValue::Str(SCHEMA.to_string())));
        let Some(JsonValue::Arr(cells)) = doc.get("cells") else {
            panic!("cells array missing");
        };
        assert_eq!(cells.len(), 2);
        let deltas = compare_scale(&rendered, &rendered, 0.2, 0.25).expect("compare");
        assert_eq!(deltas.len(), 2 * 4);
        assert!(deltas.iter().all(|d| !d.regressed));
    }

    #[test]
    fn comparison_flags_wall_and_objective_drift() {
        let report = tiny_report();
        let baseline = render_scale_json(&report);
        let mut slowed = report.clone();
        slowed.cells[0].total_ms = slowed.cells[0].total_ms * 10.0 + 100.0;
        slowed.cells[1].objective += 1.0;
        let current = render_scale_json(&slowed);
        let deltas = compare_scale(&baseline, &current, 0.2, 0.25).expect("compare");
        let wall = deltas
            .iter()
            .find(|d| d.metric == "wall_ms" && d.cell == cell_label(16, 60))
            .unwrap();
        assert!(wall.regressed, "10x + 100ms must breach 20% + floor");
        let obj = deltas
            .iter()
            .find(|d| d.metric == "objective" && d.cell == cell_label(200, 120))
            .unwrap();
        assert!(obj.regressed, "objective drift is bit-exact");
        // The untouched cell stays green.
        assert!(deltas
            .iter()
            .filter(|d| d.cell == cell_label(200, 120) && d.metric != "objective")
            .all(|d| !d.regressed));
    }

    #[test]
    fn gate_subset_matches_against_the_full_curve() {
        let full = render_scale_json(&tiny_report());
        let subset = render_scale_json(&ScaleReport {
            seed: 11,
            window: 32,
            cells: vec![run_scale_cell(200, 120, 11, 32)],
        });
        let deltas = compare_scale(&full, &subset, 0.2, 0.25).expect("compare");
        assert_eq!(deltas.len(), 4);
        assert!(deltas.iter().all(|d| d.cell == cell_label(200, 120)));
        // Objective is bit-stable across separate runs of the same cell.
        assert!(deltas.iter().all(|d| !d.regressed || d.metric == "wall_ms"));
        // Disjoint cells are an error, not a silent pass.
        let foreign = render_scale_json(&ScaleReport {
            seed: 11,
            window: 32,
            cells: vec![run_scale_cell(300, 40, 11, 32)],
        });
        assert!(compare_scale(&full, &foreign, 0.2, 0.25).is_err());
    }

    #[test]
    fn comparison_rejects_foreign_schemas() {
        let report = render_scale_json(&tiny_report());
        assert!(compare_scale("{\"schema\": \"other/9\", \"cells\": []}", &report, 0.2, 0.25)
            .is_err());
    }
}
