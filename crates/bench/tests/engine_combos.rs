//! End-to-end tests of the policy × engine combinations that did not
//! exist before the unified scheduling engine: the online ρ/w scheduler
//! under fault injection and the greedy baseline with recovery. Each combo
//! runs to quiescence, is verified structurally, feeds the netsim flight
//! recorder and the forensics pipeline, and the policy × rate report's
//! JSON form is validated with the repo's own parser.

use coflow::sched::recovery::verify_faulty_outcome;
use coflow::{
    compute_order, diagnose_faulty, run_greedy_with_faults, run_online_with_faults,
    solve_interval_lp, Coflow, Detector, DiagnosticsConfig, Instance, OnlineOptions, OrderRule,
};
use coflow_bench::arrivals::arrivals_instance;
use coflow_bench::faults::{
    render_policies_json, run_fault_policies, validate_policies_json, FAULT_POLICIES,
};
use coflow_matching::IntMatrix;
use coflow_netsim::{record_flights, FaultEvent, FaultPlan, RecorderConfig};
use coflow_workloads::json::{self, JsonValue};

/// Two ports, three coflows, one staggered arrival; demand on both ingress
/// ports so an ingress outage is guaranteed to strand planned units.
fn inst() -> Instance {
    let c0 = Coflow::new(0, IntMatrix::from_nested(&[[3, 1], [0, 2]])).with_weight(2.0);
    let c1 = Coflow::new(1, IntMatrix::from_nested(&[[1, 4], [2, 0]])).with_release(2);
    let c2 = Coflow::new(2, IntMatrix::from_nested(&[[0, 0], [5, 1]])).with_weight(0.5);
    Instance::new(2, vec![c0, c1, c2])
}

/// Shared post-run checks: structural validity, recorder consistency, and
/// fault-attributed diagnostics with a starvation firing.
fn check_combo(
    instance: &Instance,
    plan: &FaultPlan,
    out: &coflow::FaultyOutcome,
    expect_all_complete: bool,
) {
    verify_faulty_outcome(instance, plan, out).expect("combo must produce a valid schedule");
    if expect_all_complete {
        assert!(out.completions.iter().all(Option::is_some));
    }
    assert!(out.blocked_units > 0, "the outage must strand planned units");
    assert!(out.replans >= 2, "crossing a fault boundary charges an epoch");
    assert_eq!(out.tiers.len(), out.replans);
    assert!(
        out.tiers.iter().all(|&t| t == 0),
        "LP-free policies never degrade through a fallback chain"
    );

    // Flight recorder over the executed trace + blocked log.
    let totals: Vec<u64> = instance.coflows().iter().map(|c| c.total_units()).collect();
    let releases = instance.releases();
    let rec = record_flights(
        &out.executed,
        &totals,
        &releases,
        &out.blocked,
        &RecorderConfig::default(),
    );
    assert_eq!(rec.flights.len(), instance.len());
    let blocked_total: u64 = rec.flights.iter().map(|f| f.blocked_slots).sum();
    assert_eq!(
        blocked_total,
        out.blocked.len() as u64,
        "every logged blocked slot is attributed to exactly one flight"
    );
    for (k, flight) in rec.flights.iter().enumerate() {
        assert_eq!(flight.completion, out.completions[k]);
        if out.completions[k].is_some() {
            assert_eq!(flight.served_units, totals[k]);
        }
    }

    // Forensics: per-coflow attribution plus a starvation firing (the
    // blocked log is non-empty, and the threshold is set to one slot).
    let lp = solve_interval_lp(instance);
    let cfg = DiagnosticsConfig {
        starvation_blocked_slots: 1,
        ..DiagnosticsConfig::default()
    };
    let d = diagnose_faulty(instance, out, None, &lp, &cfg);
    assert_eq!(d.per_coflow.len(), instance.len());
    assert!(d.per_coflow.iter().map(|r| r.blocked_slots).sum::<u64>() > 0);
    assert!(
        d.anomalies.iter().any(|a| a.detector == Detector::Starvation),
        "stranded units above threshold must fire starvation"
    );
}

#[test]
fn online_under_faults_runs_end_to_end() {
    let instance = inst();
    let plan = FaultPlan::new(vec![FaultEvent::IngressOutage { port: 1, start: 1, end: 6 }]);
    let out = run_online_with_faults(&instance, OnlineOptions::default(), &plan)
        .expect("online under faults must settle");
    check_combo(&instance, &plan, &out, true);
}

#[test]
fn online_stale_priorities_also_survive_faults() {
    let instance = inst();
    let plan = FaultPlan::new(vec![FaultEvent::IngressOutage { port: 1, start: 1, end: 6 }]);
    let out = run_online_with_faults(&instance, OnlineOptions::legacy(), &plan)
        .expect("legacy-resort online under faults must settle");
    check_combo(&instance, &plan, &out, true);
}

#[test]
fn greedy_with_recovery_handles_outage_and_cancellation() {
    let instance = inst();
    let plan = FaultPlan::new(vec![
        FaultEvent::IngressOutage { port: 1, start: 1, end: 6 },
        FaultEvent::CoflowCancelled { coflow: 2, at: 3 },
    ]);
    let order = compute_order(&instance, OrderRule::LoadOverWeight);
    let out = run_greedy_with_faults(&instance, order, &plan)
        .expect("greedy with recovery must settle");
    assert_eq!(out.completions[2], None, "cancelled coflow never completes");
    assert!(out.completions[0].is_some() && out.completions[1].is_some());
    check_combo(&instance, &plan, &out, false);
}

#[test]
fn policy_report_json_is_validated_by_the_in_repo_parser() {
    let instance = arrivals_instance(8, 12, 7);
    let report = run_fault_policies(&instance, &[0.0, 0.4], 7);
    let text = render_policies_json(&report);

    // Full schema validation (parser + invariants).
    let summary = validate_policies_json(&text).expect("report must validate");
    assert!(summary.contains("invariants hold"));

    // And a direct structural read with the in-repo JSON parser.
    let doc = json::parse(&text).expect("report must parse");
    let Some(JsonValue::Arr(policies)) = doc.get("policies") else {
        panic!("policies array missing");
    };
    assert_eq!(policies.len(), FAULT_POLICIES.len());
    for p in policies {
        let Some(JsonValue::Arr(cells)) = p.get("cells") else {
            panic!("cells array missing");
        };
        assert_eq!(cells.len(), 2, "one cell per requested rate");
    }
}
