//! Golden `coflow-diff/1` report: a fixture pair with one known stage
//! regression (+30% lp_solve) and one known objective bit-flip must
//! render byte-identically run over run, attribute both regressions by
//! name, and drive a nonzero exit (via `regressions()`, the predicate
//! `experiments -- diff` exits on). Regenerate after intentional schema
//! changes with
//! `GOLDEN_UPDATE=1 cargo test -p coflow-bench --test diff_golden`.

use coflow_bench::diff::{diff_records, render_diff_json, render_diff_table};
use coflow_workloads::json::{self, JsonValue};
use obs::ledger::{LedgerRecord, LEDGER_SCHEMA};

/// Baseline fixture: a profile-shaped run record with fixed numbers.
fn baseline_record() -> LedgerRecord {
    LedgerRecord {
        seq: 1,
        ts: 1700000000,
        kind: "run".to_string(),
        command: "profile".to_string(),
        label: "12-cell grid".to_string(),
        seed: 2015,
        fingerprint: "ports=60 coflows=150".to_string(),
        git_rev: "0000000000".to_string(),
        git_dirty: false,
        elapsed_ms: 4000.0,
        peak_rss_kb: 80_000,
        peak_live_bytes: 52_000_000,
        alloc_calls: 9_000_000,
        stages_ms: vec![
            ("lp_build".to_string(), 200.0),
            ("lp_solve".to_string(), 1000.0),
            ("order".to_string(), 5.0),
            ("decompose".to_string(), 400.0),
            ("simulate".to_string(), 300.0),
        ],
        stage_allocs: vec![("lp_solve".to_string(), 4_000_000)],
        stage_alloc_bytes: vec![("lp_solve".to_string(), 800_000_000)],
        objectives: vec![
            ("H_LP/d".to_string(), 6950481.0),
            ("H_rho/d".to_string(), 7110231.0),
        ],
        verdicts: vec![],
    }
}

/// Current fixture: lp_solve +30% (past both the 20% tolerance and the
/// 10 ms absolute floor) and the H_LP/d objective's last mantissa bit
/// flipped — the two regression kinds the diff must attribute.
fn regressed_record() -> LedgerRecord {
    let mut rec = baseline_record();
    rec.seq = 2;
    for (name, v) in &mut rec.stages_ms {
        if name == "lp_solve" {
            *v = 1300.0;
        }
    }
    for (name, v) in &mut rec.objectives {
        if name == "H_LP/d" {
            *v = f64::from_bits(v.to_bits() ^ 1);
        }
    }
    rec
}

#[test]
fn known_regressions_are_attributed_and_match_golden() {
    // The provenance header is zeroed so the golden stays byte-stable
    // across commits and working-tree states.
    obs::ledger::set_zero_provenance(true);
    let a = baseline_record();
    let b = regressed_record();
    let report = diff_records(&a, &b, "baseline", "current", 0.2);

    // Exactly the two seeded regressions, attributed by section:name —
    // this is the predicate `experiments -- diff` exits nonzero on.
    let regs = report.regressions();
    let names: Vec<String> = regs.iter().map(|r| format!("{}:{}", r.section, r.name)).collect();
    assert_eq!(names, vec!["stage:lp_solve", "objective:H_LP/d"]);

    // The table names both regressions for the terminal reader.
    let table = render_diff_table(&report);
    assert!(table.contains("stage:lp_solve"));
    assert!(table.contains("objective:H_LP/d"));
    assert!(table.contains("verdict: 2 regression(s)"));

    let rendered = render_diff_json(&report, LEDGER_SCHEMA, LEDGER_SCHEMA);

    // The golden must itself parse and carry the regression count — a
    // broken golden would otherwise lock in a regression.
    let doc = json::parse(&rendered).expect("diff report must be valid JSON");
    assert_eq!(doc.get("schema"), Some(&JsonValue::Str("coflow-diff/1".into())));
    assert_eq!(doc.get("regressions"), Some(&JsonValue::Num("2".into())));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/diff.json");
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::write(path, &rendered).unwrap();
    }
    let golden = include_str!("golden/diff.json");
    assert_eq!(
        rendered, golden,
        "diff report drifted from the golden file; \
         run with GOLDEN_UPDATE=1 to regenerate intentionally"
    );
}

#[test]
fn self_diff_is_clean_and_exits_zero() {
    let a = baseline_record();
    let report = diff_records(&a, &a, "a", "a", 0.2);
    assert!(report.regressions().is_empty());
    assert!(report.unmatched.is_empty());
    let table = render_diff_table(&report);
    assert!(table.contains("verdict: OK"));
}
