//! Golden `coflow-diagnostics/1` report: the explain pipeline on a tiny
//! seeded workload must render byte-identically run over run. Any
//! intentional schema or metric change regenerates the golden with
//! `GOLDEN_UPDATE=1 cargo test -p coflow-bench --test explain_golden`.

use coflow::DiagnosticsConfig;
use coflow_bench::explain::{render_json, run_explain, validate_report, ValidateOpts};
use coflow_lp::SimplexOptions;
use coflow_workloads::{generate_trace, TraceConfig};

#[test]
fn diagnostics_report_matches_golden() {
    // The provenance header is zeroed so the golden stays byte-stable
    // across commits and working-tree states.
    obs::ledger::set_zero_provenance(true);
    let instance = generate_trace(&TraceConfig::small(7));
    let report = run_explain(
        &instance,
        7,
        &SimplexOptions::default(),
        None,
        &DiagnosticsConfig::default(),
    );
    let rendered = render_json(&report);

    // The golden must itself be schema-valid — a broken golden would
    // otherwise lock in a regression.
    validate_report(&rendered, &ValidateOpts::default())
        .expect("golden report must validate against coflow-diagnostics/1");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/diagnostics.json");
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::write(path, &rendered).unwrap();
    }
    let golden = include_str!("golden/diagnostics.json");
    assert_eq!(
        rendered, golden,
        "diagnostics report drifted from the golden file; \
         run with GOLDEN_UPDATE=1 to regenerate intentionally"
    );
}
