//! Differential check of the sharded BvN path against sequential
//! decomposition across the full 12-cell seed grid (3 orders × 4 scheduling
//! cases).
//!
//! The engine engages `bvn_decompose_sharded` on the parallel precompute
//! path only, and the sharded decomposition is slot-for-slot identical to
//! the sequential one exactly when the aggregate's support is connected
//! (it delegates). On the seed grid that means:
//!
//! * cases (a)/(b) — ungrouped: every batch is one coflow, and a facebook
//!   coflow is complete-bipartite, hence connected → the whole trace is
//!   bit-identical;
//! * case (d) — backfill disables the precompute, so the sharded option
//!   never engages → bit-identical trivially;
//! * case (c) — grouped aggregates can disconnect, and for a disconnected
//!   support the concurrent merge is a *different valid schedule* of the
//!   same total load (components run side by side instead of interleaved).
//!   There the guarantees are: identical makespan (each batch still takes
//!   exactly ρ slots), a replay-valid schedule, and bit-identical
//!   determinism across repeated runs.

use coflow::sched::ExecOptions;
use coflow::{compute_order, run_with_order_opts, verify_outcome, OrderRule};
use coflow_workloads::facebook::{generate_trace, TraceConfig};

const CASES: [(bool, bool); 4] = [(false, false), (false, true), (true, false), (true, true)];

#[test]
fn sharded_decompose_matches_sequential_on_seed_grid() {
    let instance = generate_trace(&TraceConfig::small(0xC0F));
    for rule in [OrderRule::Arrival, OrderRule::LoadOverWeight, OrderRule::LpBased] {
        let order = compute_order(&instance, rule);
        for (grouping, backfill) in CASES {
            let base = run_with_order_opts(
                &instance,
                order.clone(),
                grouping,
                ExecOptions {
                    backfill,
                    ..ExecOptions::default()
                },
            );
            let opts = ExecOptions {
                backfill,
                sharded_decompose: true,
                ..ExecOptions::default()
            };
            let sharded = run_with_order_opts(&instance, order.clone(), grouping, opts);
            let cell = format!("{:?} grouping={} backfill={}", rule, grouping, backfill);
            if grouping && !backfill {
                // Case (c): sharding engages on (possibly disconnected)
                // group aggregates — schedule-level guarantees only.
                assert_eq!(
                    base.makespan(),
                    sharded.makespan(),
                    "makespan diverged in cell {}",
                    cell
                );
                verify_outcome(&instance, &sharded)
                    .unwrap_or_else(|e| panic!("invalid sharded schedule in cell {}: {}", cell, e));
                let again = run_with_order_opts(&instance, order.clone(), grouping, opts);
                assert_eq!(sharded.trace, again.trace, "nondeterminism in cell {}", cell);
                assert_eq!(
                    sharded.objective.to_bits(),
                    again.objective.to_bits(),
                    "nondeterminism in cell {}",
                    cell
                );
            } else {
                // Cases (a)/(b)/(d): slot-by-slot identical.
                assert_eq!(base.trace, sharded.trace, "trace diverged in cell {}", cell);
                assert_eq!(base.completions, sharded.completions, "cell {}", cell);
                assert_eq!(
                    base.objective.to_bits(),
                    sharded.objective.to_bits(),
                    "objective diverged in cell {}",
                    cell
                );
            }
        }
    }
}
