//! Empirical approximation-ratio checks for the registry policies: every
//! policy with a proven bound must stay within it against the Lemma 1
//! interval-LP lower bound — Shafiee–Ghaderi within 5 (arXiv:1704.08357),
//! Im–Purohit within 4 (arXiv:1707.04331), the Algorithm 2 pipelines
//! within 67/3 — on several seeded arrivals instances. The measured
//! ratios on the canonical 24×36 instance are recorded in EXPERIMENTS.md;
//! `experiments -- tournament` re-measures them on every gate run.

use coflow::bounds::interval_lp_bound;
use coflow::{run_policy_with_faults, verify_faulty_outcome, PolicyRegistry};
use coflow_bench::arrivals::arrivals_instance;
use coflow_netsim::FaultPlan;

/// Every bounded canonical policy honors its registry bound; every policy
/// (bounded or not) produces a feasible schedule at least as costly as
/// the LP lower bound.
#[test]
fn measured_ratios_stay_within_the_proven_bounds() {
    let registry = PolicyRegistry::builtin();
    for seed in [3u64, 7, 11] {
        let inst = arrivals_instance(8, 12, seed);
        let lp = interval_lp_bound(&inst);
        assert!(lp > 0.0, "seed {}: LP lower bound must be positive", seed);
        // A quiet (rate-0) plan through the fault engine is bit-identical
        // to the clean run and accepts every policy, including the
        // Execute-emitting resilient planner.
        let quiet = FaultPlan::generate(inst.ports(), inst.len(), 1, 0.0, seed);
        for entry in registry.canonical() {
            let mut policy = entry.build(&inst);
            let out = run_policy_with_faults(&inst, policy.as_mut(), &quiet)
                .unwrap_or_else(|e| panic!("seed {}: policy {}: {}", seed, entry.name, e));
            verify_faulty_outcome(&inst, &quiet, &out)
                .unwrap_or_else(|e| panic!("seed {}: policy {}: {}", seed, entry.name, e));
            let ratio = out.objective / lp;
            assert!(
                ratio >= 1.0 - 1e-9,
                "seed {}: policy {} beat the LP lower bound: ratio {}",
                seed,
                entry.name,
                ratio
            );
            if let Some(bound) = entry.bound {
                assert!(
                    ratio <= bound + 1e-9,
                    "seed {}: policy {} ratio {:.4} exceeds the proven bound {}",
                    seed,
                    entry.name,
                    ratio,
                    bound
                );
            }
        }
    }
}

/// The two successor-paper bounds specifically, by name — the satellite
/// contract of this test file (TWCT/LP ≤ 5 and ≤ 4).
#[test]
fn successor_policies_meet_their_paper_bounds() {
    let registry = PolicyRegistry::builtin();
    let inst = arrivals_instance(8, 12, 3);
    let lp = interval_lp_bound(&inst);
    let quiet = FaultPlan::generate(inst.ports(), inst.len(), 1, 0.0, 3);
    for (name, bound) in [("shafiee-ghaderi", 5.0), ("im-purohit", 4.0)] {
        let entry = registry.resolve(name).expect("registry name");
        assert_eq!(entry.bound, Some(bound), "{}: registry bound drifted", name);
        let mut policy = entry.build(&inst);
        let out = run_policy_with_faults(&inst, policy.as_mut(), &quiet).expect("clean run");
        let ratio = out.objective / lp;
        assert!(
            ratio <= bound,
            "{}: measured ratio {:.4} exceeds the paper bound {}",
            name,
            ratio,
            bound
        );
        assert!(ratio >= 1.0 - 1e-9, "{}: ratio {:.4} below 1", name, ratio);
    }
}
