//! Differential proof of the checkpoint/resume contract: interrupting a
//! run at **every** decision epoch — checkpoint, serialize to the
//! `coflow-snapshot/1` document, re-parse, restore, continue — must land on
//! exactly the schedule an uninterrupted run produces, for every one of the
//! 22 pinned cells (12 grid cells, online fixed/stale, greedy, the
//! successor policies shafiee-ghaderi/im-purohit, the three rate-0.3 fault
//! combinations, and the two rate-0.2 `faults20/*` successor cells).
//!
//! Two granularities:
//!
//! * [`every_epoch_checkpoint_matches_fresh_pins_tiny`] runs in the normal
//!   test tier on a small instance, against freshly computed pins;
//! * [`every_epoch_checkpoint_matches_committed_pins`] (ignored by
//!   default; `scripts/check-perf.sh` runs it in release) replays the
//!   committed `BENCH_pins.json` cells at full pin scale — the same bit
//!   patterns the pin gate enforces must survive interruption at every
//!   single epoch.
//!
//! The clean cells (grid/online/greedy) are driven through the fault
//! engine with an **empty** fault plan; their bit-equality with the
//! committed pins doubles as a proof that the steppable engine and the
//! clean pipeline execute identically.

use coflow::sched::recovery::{verify_faulty_outcome, FaultyOutcome};
use coflow::{
    compute_order, group_by_doubling, run_greedy, run_online_opts, run_policy,
    run_policy_with_faults, run_shafiee_ghaderi, AlgorithmSpec, BvnBatchPolicy, Engine,
    EngineSnapshot, ExecOptions, GreedyPolicy, ImPurohitPolicy, Instance, OnlineOptions,
    OnlineRhoPolicy, OrderRule, Policy, ResilientPolicy, ShafieeGhaderiPolicy,
};
use coflow_bench::arrivals::arrivals_instance;
use coflow_bench::pins::{collect_pins_on, parse_pins, pin_fault_plan_20, Pin, FAULT_RATE};
use coflow_lp::SimplexOptions;
use coflow_netsim::FaultPlan;

/// Builds the policy a pin label names, exactly as the pin run builds it.
fn policy_for(instance: &Instance, label: &str) -> Box<dyn Policy> {
    if let Some(rest) = label.strip_prefix("grid/") {
        let (rule_name, case) = rest.split_once('/').expect("grid label");
        let rule = match rule_name {
            "H_A" => OrderRule::Arrival,
            "H_rho" => OrderRule::LoadOverWeight,
            "H_LP" => OrderRule::LpBased,
            other => panic!("unknown grid rule {}", other),
        };
        let (grouping, backfill) = match case {
            "a" => (false, false),
            "b" => (false, true),
            "c" => (true, false),
            "d" => (true, true),
            other => panic!("unknown grid case {}", other),
        };
        let order = compute_order(instance, rule);
        let batches: Vec<Vec<usize>> = if grouping {
            group_by_doubling(instance, &order).groups
        } else {
            order.iter().map(|&k| vec![k]).collect()
        };
        let opts = ExecOptions {
            backfill,
            ..ExecOptions::default()
        };
        return Box::new(BvnBatchPolicy::new(instance, order, batches, opts));
    }
    match label {
        "online/fixed" => Box::new(OnlineRhoPolicy::new(instance, OnlineOptions::default())),
        "online/stale" => Box::new(OnlineRhoPolicy::new(instance, OnlineOptions::legacy())),
        "greedy" => {
            let order = compute_order(instance, OrderRule::LoadOverWeight);
            Box::new(GreedyPolicy::new(instance, order))
        }
        "faults/resilient" => Box::new(ResilientPolicy::new(
            AlgorithmSpec {
                order: OrderRule::LoadOverWeight,
                grouping: true,
                backfill: true,
            },
            SimplexOptions::default(),
        )),
        "faults/online" => Box::new(OnlineRhoPolicy::new(instance, OnlineOptions::default())),
        "faults/greedy" => {
            let order = compute_order(instance, OrderRule::LoadOverWeight);
            Box::new(GreedyPolicy::new(instance, order))
        }
        "shafiee-ghaderi" | "faults20/shafiee-ghaderi" => {
            Box::new(ShafieeGhaderiPolicy::new(instance))
        }
        "im-purohit" | "faults20/im-purohit" => Box::new(ImPurohitPolicy::with_order(
            instance,
            compute_order(instance, OrderRule::LpBased),
        )),
        other => panic!("unknown pin label {}", other),
    }
}

/// The fault plan of the pin run: clean cells get the empty plan, fault
/// cells the seeded plan over the clean-makespan horizon (same derivation
/// as `collect_pins_on`).
fn pin_fault_plan(instance: &Instance, seed: u64) -> FaultPlan {
    let online_fixed = run_online_opts(instance, OnlineOptions::default());
    let online_stale = run_online_opts(instance, OnlineOptions::legacy());
    let greedy = run_greedy(
        instance,
        compute_order(instance, OrderRule::LoadOverWeight),
    );
    let horizon = online_fixed
        .makespan()
        .max(online_stale.makespan())
        .max(greedy.makespan())
        .max(1);
    FaultPlan::generate(instance.ports(), instance.len(), horizon, FAULT_RATE, seed)
}

/// The `faults20/*` plan of the pin run: rate 0.2 over the max clean
/// makespan of the five engine policies, on the offset seed stream (same
/// derivation as `collect_pins_on`).
fn faults20_plan(instance: &Instance, seed: u64) -> FaultPlan {
    let online_fixed = run_online_opts(instance, OnlineOptions::default());
    let online_stale = run_online_opts(instance, OnlineOptions::legacy());
    let greedy = run_greedy(
        instance,
        compute_order(instance, OrderRule::LoadOverWeight),
    );
    let sg = run_shafiee_ghaderi(instance);
    let ip = {
        let mut policy = ImPurohitPolicy::with_order(
            instance,
            compute_order(instance, OrderRule::LpBased),
        );
        run_policy(instance, &mut policy).expect("im-purohit clean run")
    };
    pin_fault_plan_20(instance, seed, &[&online_fixed, &online_stale, &greedy, &sg, &ip])
}

/// Drives one cell, checkpointing after **every** decision epoch and
/// resuming from the checkpoint; every `json_stride`-th checkpoint (plus
/// the first three) additionally round-trips through the serialized
/// `coflow-snapshot/1` document before the restore. Returns the final
/// outcome and the epoch count.
fn run_with_checkpoint_every_epoch(
    instance: &Instance,
    mut policy: Box<dyn Policy>,
    plan: &FaultPlan,
    json_stride: u64,
) -> (FaultyOutcome, u64) {
    let mut engine = Engine::new(instance, plan);
    let mut epochs = 0u64;
    loop {
        let more = engine.step(policy.as_mut()).expect("engine step");
        epochs += 1;
        if !more {
            break;
        }
        let snapshot = engine.checkpoint(policy.as_ref()).expect("checkpoint");
        let snapshot = if epochs <= 3 || epochs % json_stride.max(1) == 0 {
            EngineSnapshot::from_json(&snapshot.to_json()).expect("snapshot round trip")
        } else {
            snapshot
        };
        let (restored_engine, restored_policy) =
            Engine::restore(instance, snapshot).expect("restore");
        engine = restored_engine;
        policy = restored_policy;
    }
    (engine.into_outcome(policy.as_mut()), epochs)
}

/// Checks one pinned cell: the every-epoch-interrupted run must equal the
/// uninterrupted reference bit for bit, and both must equal the pin.
fn check_cell(instance: &Instance, plan: &FaultPlan, pin: &Pin, json_stride: u64) {
    let mut reference_policy = policy_for(instance, &pin.label);
    let reference = run_policy_with_faults(instance, reference_policy.as_mut(), plan)
        .unwrap_or_else(|e| panic!("{}: reference run failed: {}", pin.label, e));
    verify_faulty_outcome(instance, plan, &reference)
        .unwrap_or_else(|e| panic!("{}: reference schedule invalid: {}", pin.label, e));

    let (interrupted, epochs) = run_with_checkpoint_every_epoch(
        instance,
        policy_for(instance, &pin.label),
        plan,
        json_stride,
    );
    assert!(epochs >= 1, "{}: no epochs ran", pin.label);

    assert_eq!(
        interrupted.objective.to_bits(),
        reference.objective.to_bits(),
        "{}: interrupted objective {} != reference {}",
        pin.label,
        interrupted.objective,
        reference.objective
    );
    assert_eq!(interrupted.replans, reference.replans, "{}: replans", pin.label);
    assert_eq!(interrupted.tiers, reference.tiers, "{}: tiers", pin.label);
    assert_eq!(interrupted.executed, reference.executed, "{}: executed trace", pin.label);
    assert_eq!(
        interrupted.completions, reference.completions,
        "{}: completions",
        pin.label
    );

    assert_eq!(
        interrupted.objective.to_bits(),
        pin.objective.to_bits(),
        "{}: objective {} (bits {:#x}) drifted from pin {} (bits {:#x})",
        pin.label,
        interrupted.objective,
        interrupted.objective.to_bits(),
        pin.objective,
        pin.objective.to_bits()
    );
    assert_eq!(
        interrupted.executed.makespan(),
        pin.makespan,
        "{}: makespan",
        pin.label
    );
}

fn check_all_pins(instance: &Instance, seed: u64, pins: &[Pin], json_stride: u64) {
    let empty = FaultPlan::new(vec![]);
    let faulted = pin_fault_plan(instance, seed);
    let faulted20 = faults20_plan(instance, seed);
    for pin in pins {
        let plan = if pin.label.starts_with("faults/") {
            &faulted
        } else if pin.label.starts_with("faults20/") {
            &faulted20
        } else {
            &empty
        };
        check_cell(instance, plan, pin, json_stride);
    }
}

/// Tier-1 scale: every cell, every epoch interrupted, every checkpoint
/// through the JSON document, against freshly computed pins.
#[test]
fn every_epoch_checkpoint_matches_fresh_pins_tiny() {
    let seed = 3;
    let instance = arrivals_instance(8, 10, seed);
    let report = collect_pins_on(&instance, seed);
    assert_eq!(report.pins.len(), 22);
    check_all_pins(&instance, seed, &report.pins, 1);
}

/// Full pin scale against the committed `BENCH_pins.json` bits. Heavy:
/// run with `cargo test --release -p coflow-bench --test
/// checkpoint_differential -- --ignored` (scripts/check-perf.sh does).
#[test]
#[ignore = "full pin scale; run in release via scripts/check-perf.sh"]
fn every_epoch_checkpoint_matches_committed_pins() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_pins.json"
    ))
    .expect("committed BENCH_pins.json (regenerate: experiments -- pin --out BENCH_pins.json)");
    let report = parse_pins(&text).expect("parse committed pins");
    assert_eq!(report.pins.len(), 22);
    let instance = arrivals_instance(24, 36, report.seed);
    // The serialized round trip is exercised on a stride: the snapshot
    // document grows with the executed trace, so rendering it at all of
    // the several thousand online epochs would dominate the run without
    // adding coverage (restore itself still happens at every epoch).
    check_all_pins(&instance, report.seed, &report.pins, 17);
}
