//! Umbrella crate for the coflow-scheduling reproduction.
//!
//! Re-exports the workspace crates so the examples and the integration test
//! suite can use a single dependency. See the individual crates for the
//! real APIs:
//!
//! * [`coflow`] — the paper's algorithms (relaxations, orderings, grouping,
//!   schedulers, bounds, verification);
//! * [`coflow_matching`] — Birkhoff–von Neumann decomposition and bipartite
//!   matching;
//! * [`coflow_lp`] — the from-scratch revised-simplex LP solver;
//! * [`coflow_netsim`] — the switch-fabric executor and trace validator;
//! * [`coflow_openshop`] — the concurrent open shop substrate (Appendix A);
//! * [`coflow_workloads`] — synthetic traces, filters, weights, and I/O.

pub use coflow;
pub use coflow_lp;
pub use coflow_matching;
pub use coflow_netsim;
pub use coflow_openshop;
pub use coflow_workloads;
