//! `coflow-cli` — schedule a coflow trace from a file.
//!
//! ```text
//! coflow-cli <trace.{json,csv}> [--ports N] [--order H_A|H_rho|H_LP|H_size]
//!            [--no-group] [--no-backfill] [--rematch] [--policy NAME]
//!            [--analyze] [--explain] [--emit-json] [--profile]
//!            [--trace-out PATH] [--telemetry PATH]
//! coflow-cli --generate <n> [--ports N] [--seed S]   # print a trace as CSV
//! ```
//!
//! `--policy NAME` selects a scheduler from the policy registry
//! (`coflow::PolicyRegistry`): `bvn-batch` (the default Algorithm 2
//! pipeline, honoring `--order`/`--no-group`/`--no-backfill`), `online`
//! (ρ/w priorities re-sorted on arrivals *and* completions),
//! `online-stale` (legacy arrival-only re-sort), `greedy` (work-conserving
//! priority greedy over the `--order` permutation), `shafiee-ghaderi`
//! (LP-free primal–dual, 5-approx), and `im-purohit` (LP-completion-time
//! order, 4-approx). `resilient` is the fault-recovery pipeline and needs
//! fault injection — the CLI schedules clean fabrics, so it points at
//! `experiments -- faults` instead. The old `--online`, `--online-stale`,
//! and `--greedy` flags remain as deprecated aliases for the matching
//! `--policy` selections.
//!
//! `--profile` enables the `obs` registry and prints the span/counter
//! summary tree to stderr after scheduling; `--trace-out PATH` additionally
//! writes a `chrome://tracing`-compatible JSON view (implies `--profile`).
//!
//! `--telemetry PATH` appends streaming `coflow-telemetry/1` NDJSON
//! heartbeats (decision epochs, residual demand, live allocator bytes) to
//! PATH while the scheduler runs; each line is flushed as it is written, so
//! the stream stays valid NDJSON across a SIGINT. Watch it live with
//! `scripts/watch-telemetry.sh PATH`.
//!
//! Every run appends one `coflow-ledger/1` record to the run ledger
//! (default `LEDGER.ndjson`; `--ledger PATH` or `COFLOW_LEDGER`
//! overrides, `--ledger none` disables): objective, makespan, git
//! provenance, wall-clock, memory marks, and — under `--profile` —
//! per-stage wall-clock and allocation attribution from the registry.
//! `experiments -- diff`/`report` consume the ledger; appends are
//! non-fatal so a read-only checkout still schedules.
//!
//! `--explain` solves the interval-indexed LP and prints per-coflow
//! forensics — realized completion vs `C̄_k`, the wait/service split, and
//! any anomaly-detector firings (see `coflow::diagnostics`).
//!
//! CSV format: `coflow_id,src,dst,mb,release,weight` (header optional).
//! Exit code 0 on success; the schedule is validated end-to-end before any
//! output is printed.

use coflow::analysis::analyze;
use coflow::ordering::OrderRule;
use coflow::sched::online::run_online_opts;
use coflow::sched::{run_with_order_ext, ScheduleOutcome};
use coflow::{
    compute_order, run_greedy, run_policy, verify_outcome, Instance, OnlineOptions,
    PolicyRegistry, DEPRECATED_FLAG_ALIASES,
};
use coflow_workloads::{generate_trace, io, TraceConfig};
use std::process::exit;

struct Args {
    trace_path: Option<String>,
    ports: Option<usize>,
    order: OrderRule,
    grouping: bool,
    backfill: bool,
    rematch: bool,
    policy: Option<String>,
    do_analyze: bool,
    do_explain: bool,
    emit_json: bool,
    profile: bool,
    trace_out: Option<String>,
    telemetry: Option<String>,
    ledger: Option<String>,
    generate: Option<usize>,
    seed: u64,
}

/// Resolve the run-ledger path: `--ledger` beats `COFLOW_LEDGER` beats the
/// default `LEDGER.ndjson`; the sentinels `none`/`off` disable appends.
/// (Mirrors `coflow_bench::ledger::ledger_path`; the root crate does not
/// depend on the bench crate, so the three-line rule is restated here.)
fn resolve_ledger(flag: Option<&str>) -> Option<String> {
    let chosen = flag
        .map(str::to_string)
        .or_else(|| std::env::var("COFLOW_LEDGER").ok())
        .unwrap_or_else(|| "LEDGER.ndjson".to_string());
    match chosen.as_str() {
        "none" | "off" | "" => None,
        _ => Some(chosen),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: coflow-cli <trace.json|trace.csv> [--ports N] \
         [--order H_A|H_rho|H_LP|H_size] [--no-group] [--no-backfill] \
         [--rematch] [--policy NAME] [--analyze] \
         [--explain] [--emit-json] [--profile] [--trace-out PATH]\n\
         \x20      [--telemetry PATH] [--ledger PATH|none]\n\
         \x20      coflow-cli --generate <n> [--ports N] [--seed S]\n\
         \x20      (--online/--online-stale/--greedy are deprecated \
         aliases for --policy)"
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        trace_path: None,
        ports: None,
        order: OrderRule::LpBased,
        grouping: true,
        backfill: true,
        rematch: false,
        policy: None,
        do_analyze: false,
        do_explain: false,
        emit_json: false,
        profile: false,
        trace_out: None,
        telemetry: None,
        ledger: None,
        generate: None,
        seed: 2015,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--ports" => {
                i += 1;
                args.ports = Some(argv.get(i).unwrap_or_else(|| usage()).parse().unwrap_or_else(|_| usage()));
            }
            "--order" => {
                i += 1;
                args.order = match argv.get(i).map(String::as_str) {
                    Some("H_A") => OrderRule::Arrival,
                    Some("H_rho") => OrderRule::LoadOverWeight,
                    Some("H_LP") => OrderRule::LpBased,
                    Some("H_size") => OrderRule::SizeOverWeight,
                    _ => usage(),
                };
            }
            "--no-group" => args.grouping = false,
            "--no-backfill" => args.backfill = false,
            "--rematch" => args.rematch = true,
            "--policy" => {
                i += 1;
                args.policy =
                    Some(argv.get(i).unwrap_or_else(|| usage()).to_string());
            }
            flag if DEPRECATED_FLAG_ALIASES.iter().any(|(f, _)| *f == flag) => {
                let (_, name) = DEPRECATED_FLAG_ALIASES
                    .iter()
                    .find(|(f, _)| *f == flag)
                    .expect("guard matched");
                eprintln!(
                    "note: {} is deprecated; use --policy {} instead",
                    flag, name
                );
                args.policy = Some(name.to_string());
            }
            "--analyze" => args.do_analyze = true,
            "--explain" => args.do_explain = true,
            "--emit-json" => args.emit_json = true,
            "--profile" => args.profile = true,
            "--trace-out" => {
                i += 1;
                args.trace_out =
                    Some(argv.get(i).unwrap_or_else(|| usage()).to_string());
                args.profile = true;
            }
            "--telemetry" => {
                i += 1;
                args.telemetry =
                    Some(argv.get(i).unwrap_or_else(|| usage()).to_string());
            }
            "--ledger" => {
                i += 1;
                args.ledger =
                    Some(argv.get(i).unwrap_or_else(|| usage()).to_string());
            }
            "--generate" => {
                i += 1;
                args.generate = Some(argv.get(i).unwrap_or_else(|| usage()).parse().unwrap_or_else(|_| usage()));
            }
            "--seed" => {
                i += 1;
                args.seed = argv.get(i).unwrap_or_else(|| usage()).parse().unwrap_or_else(|_| usage());
            }
            path if !path.starts_with('-') && args.trace_path.is_none() => {
                args.trace_path = Some(path.to_string());
            }
            _ => usage(),
        }
        i += 1;
    }
    args
}

fn load_instance(path: &str, ports: Option<usize>) -> Instance {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {}", path, e);
        exit(1)
    });
    let result = if path.ends_with(".json") {
        io::from_json(&text)
    } else {
        let ports = ports.unwrap_or_else(|| {
            // Infer from the data: max referenced port + 1.
            text.lines()
                .skip(1)
                .filter_map(|l| {
                    let f: Vec<&str> = l.split(',').collect();
                    let s = f.get(1)?.trim().parse::<usize>().ok()?;
                    let d = f.get(2)?.trim().parse::<usize>().ok()?;
                    Some(s.max(d))
                })
                .max()
                .map(|p| p + 1)
                .unwrap_or(1)
        });
        io::from_csv(ports, &text)
    };
    result.unwrap_or_else(|e| {
        eprintln!("cannot parse {}: {}", path, e);
        exit(1)
    })
}

fn main() {
    // Convert Ctrl-C into a graceful exit: the current phase finishes, any
    // output produced so far is flushed, and the process exits 130 instead
    // of being killed mid-write (report files are written atomically, so a
    // reader never observes a torn document either way).
    obs::install_sigint_handler();
    let started = std::time::Instant::now();
    let args = parse_args();

    if let Some(n) = args.generate {
        let cfg = TraceConfig {
            ports: args.ports.unwrap_or(40),
            num_coflows: n,
            seed: args.seed,
            ..TraceConfig::default()
        };
        print!("{}", io::to_csv(&generate_trace(&cfg)));
        return;
    }

    let Some(path) = args.trace_path.as_deref() else {
        usage();
    };
    let instance = load_instance(path, args.ports);
    eprintln!(
        "loaded {} coflows on a {}x{} fabric",
        instance.len(),
        instance.ports(),
        instance.ports()
    );

    if let Some(telemetry_path) = &args.telemetry {
        if let Err(e) = obs::telemetry::install(telemetry_path) {
            eprintln!("cannot open telemetry sink {}: {}", telemetry_path, e);
            exit(2);
        }
    }
    if args.profile {
        obs::set_enabled(true);
    }
    let outcome: ScheduleOutcome = match args.policy.as_deref() {
        // No selection: the default Algorithm 2 pipeline with the
        // order/grouping/backfill knobs.
        None => {
            let order = compute_order(&instance, args.order);
            run_with_order_ext(&instance, order, args.grouping, args.backfill, args.rematch)
        }
        Some(name) => {
            let registry = PolicyRegistry::builtin();
            let entry = registry.resolve(name).unwrap_or_else(|e| {
                eprintln!("error: {}", e);
                exit(2)
            });
            match entry.name {
                "online" => run_online_opts(&instance, OnlineOptions::default()),
                "online-stale" => run_online_opts(&instance, OnlineOptions::legacy()),
                // Greedy keeps honoring --order, exactly like the old
                // --greedy flag did (default H_LP here; the registry's
                // engine cells pin the H_rho order).
                "greedy" => run_greedy(&instance, compute_order(&instance, args.order)),
                "bvn-batch" => {
                    let order = compute_order(&instance, args.order);
                    run_with_order_ext(
                        &instance,
                        order,
                        args.grouping,
                        args.backfill,
                        args.rematch,
                    )
                }
                "resilient" => {
                    eprintln!(
                        "error: policy 'resilient' is the fault-recovery pipeline and \
                         needs fault injection; the CLI schedules clean fabrics. On a \
                         clean fabric it equals bvn-batch — or run \
                         `experiments -- faults` for the fault sweep."
                    );
                    exit(2)
                }
                // Decision-contract policies (shafiee-ghaderi, im-purohit,
                // and future registry entries) run through the unified
                // engine directly.
                _ => {
                    let mut policy = entry.build(&instance);
                    run_policy(&instance, policy.as_mut()).unwrap_or_else(|e| {
                        eprintln!("error: policy {}: {}", entry.name, e);
                        exit(1)
                    })
                }
            }
        }
    };
    if args.profile {
        obs::set_enabled(false);
        eprint!("{}", obs::summary());
        if let Some(trace_path) = &args.trace_out {
            if let Err(e) = obs::write_chrome_trace(trace_path) {
                eprintln!("cannot write {}: {}", trace_path, e);
                exit(1);
            }
            eprintln!("chrome trace written to {}", trace_path);
        }
    }
    if let Err(e) = verify_outcome(&instance, &outcome) {
        eprintln!("internal error: schedule failed verification: {}", e);
        exit(1);
    }
    if obs::interrupted() {
        // The schedule completed before the signal was observed; report it
        // (it is valid and verified) but surface the interruption.
        eprintln!("interrupted: reporting the completed schedule and exiting 130");
    }

    if args.emit_json {
        // Shape: [objective, makespan, [[coflow_id, completion_slot], ...]]
        let mut out = String::new();
        out.push_str(&format!(
            "[\n  {:?},\n  {},\n  [",
            outcome.objective,
            outcome.makespan()
        ));
        for (idx, (c, &t)) in instance
            .coflows()
            .iter()
            .zip(&outcome.completions)
            .enumerate()
        {
            if idx > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    [{}, {}]", c.id, t));
        }
        out.push_str("\n  ]\n]");
        println!("{}", out);
    } else {
        println!("total weighted completion time: {:.1}", outcome.objective);
        println!("makespan: {} slots", outcome.makespan());
        println!("coflow_id,completion_slot");
        for (c, &t) in instance.coflows().iter().zip(&outcome.completions) {
            println!("{},{}", c.id, t);
        }
    }

    if args.do_analyze {
        let a = analyze(&instance, &outcome);
        eprintln!(
            "mean slowdown {:.2} (weighted {:.2}), worst {:.2} on coflow {}, \
             utilization {:.2}, idle pair-slots {}",
            a.mean_slowdown,
            a.weighted_mean_slowdown,
            a.max_slowdown.0,
            a.max_slowdown.1,
            a.fabric_utilization,
            a.idle_pair_slots
        );
    }

    if args.do_explain && !obs::interrupted() {
        // Skipped after an interrupt: the forensics LP is the most
        // expensive stage and the schedule report above is already
        // complete and verified.
        let lp = coflow::solve_interval_lp(&instance);
        let d = coflow::diagnose(
            &instance,
            &outcome,
            &lp,
            &coflow::DiagnosticsConfig::default(),
        );
        println!(
            "explain: objective {:.0} vs LP lower bound {:.0}{}",
            d.objective,
            d.lp_lower_bound,
            d.approx_ratio
                .map(|r| format!(" (ratio {:.3})", r))
                .unwrap_or_default()
        );
        println!("coflow_id,completion,lp_completion,ratio,wait,service,idle_share");
        for r in &d.per_coflow {
            println!(
                "{},{},{:.2},{},{},{},{:.3}",
                instance.coflow(r.coflow).id,
                r.completion.map_or("-".to_string(), |c| c.to_string()),
                r.lp_completion,
                r.ratio.map_or("-".to_string(), |x| format!("{:.3}", x)),
                r.wait_slots,
                r.service_slots,
                r.idle_share
            );
        }
        if d.anomalies.is_empty() {
            println!("no anomalies detected");
        }
        for a in &d.anomalies {
            println!("anomaly [{}] {}: {}", a.severity.name(), a.detector.name(), a.message);
        }
    }

    if let Some(ledger_path) = resolve_ledger(args.ledger.as_deref()) {
        let stats = obs::alloc::stats();
        let mut rec = obs::ledger::LedgerRecord {
            kind: "run".to_string(),
            command: "cli".to_string(),
            label: path.to_string(),
            seed: args.seed,
            fingerprint: format!(
                "ports={} coflows={} order={} policy={}",
                instance.ports(),
                instance.len(),
                args.order.name(),
                args.policy.as_deref().unwrap_or("bvn-batch")
            ),
            elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
            peak_rss_kb: obs::alloc::peak_rss_kb().unwrap_or(0),
            peak_live_bytes: stats.peak_live_bytes,
            alloc_calls: stats.alloc_calls,
            objectives: vec![
                ("objective".to_string(), outcome.objective),
                ("makespan".to_string(), outcome.makespan() as f64),
            ],
            ..obs::ledger::LedgerRecord::default()
        };
        if args.profile {
            let (ms, allocs, bytes) = obs::ledger::stage_digest(&obs::snapshot());
            rec.stages_ms = ms;
            rec.stage_allocs = allocs;
            rec.stage_alloc_bytes = bytes;
        }
        match obs::ledger::append(&ledger_path, &mut rec) {
            Ok(seq) => eprintln!("ledger: appended run record seq {} to {}", seq, ledger_path),
            Err(e) => eprintln!("warning: ledger append failed: {}", e),
        }
    }

    if obs::interrupted() {
        exit(obs::SIGINT_EXIT_CODE);
    }
}
