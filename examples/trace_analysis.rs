//! Trace diagnostics end to end: workload statistics, schedule analysis,
//! and a text Gantt timeline of the fabric.
//!
//! Run with: `cargo run --release --example trace_analysis`

use coflow::analysis::{analyze, serialization_overhead};
use coflow::grouping::group_by_doubling;
use coflow::ordering::{compute_order, OrderRule};
use coflow::sched::run_with_order;
use coflow::verify_outcome;
use coflow_netsim::render_timeline;
use coflow_workloads::{assign_weights, generate_trace, stats, TraceConfig, WeightScheme};

fn main() {
    let cfg = TraceConfig {
        ports: 12,
        num_coflows: 10,
        seed: 4,
        max_flow_size: 32,
        ..TraceConfig::default()
    };
    let instance = assign_weights(
        &generate_trace(&cfg),
        WeightScheme::RandomPermutation { seed: 4 },
    );

    // 1. Workload statistics: is this trace shaped like the paper's?
    let s = stats::trace_stats(&instance);
    println!("{}", stats::render_stats(&s));

    // 2. Schedule it with Algorithm 2 + backfilling.
    let order = compute_order(&instance, OrderRule::LpBased);
    let groups = group_by_doubling(&instance, &order);
    let outcome = run_with_order(&instance, order.clone(), true, true);
    verify_outcome(&instance, &outcome).expect("valid schedule");

    println!(
        "H_LP order: {:?}\n{} groups; serialization overhead {:.2} (<= 2 for doubling grids)",
        order,
        groups.groups.len(),
        serialization_overhead(&instance, &groups)
    );

    // 3. Post-hoc analysis.
    let a = analyze(&instance, &outcome);
    println!(
        "objective {:.0}, makespan {}, utilization {:.2}",
        outcome.objective, a.makespan, a.fabric_utilization
    );
    println!(
        "slowdowns: mean {:.2}, weighted {:.2}, worst {:.2} (coflow {})",
        a.mean_slowdown, a.weighted_mean_slowdown, a.max_slowdown.0, a.max_slowdown.1
    );

    // 4. The fabric timeline (one row per ingress port).
    println!("\n{}", render_timeline(&outcome.trace, 100));
}
