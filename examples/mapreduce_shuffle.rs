//! A multi-job MapReduce scenario: several shuffle stages with different
//! priorities compete for the fabric, and the scheduler grid shows how
//! ordering, grouping, and backfilling interact.
//!
//! Three jobs on an 8×8 fabric:
//!   * an interactive analytics query (small, high weight),
//!   * a periodic ETL pipeline (medium),
//!   * a nightly batch job (huge, low weight).
//!
//! Run with: `cargo run --example mapreduce_shuffle`

use coflow::ordering::OrderRule;
use coflow::sched::{run, AlgorithmSpec};
use coflow::{verify_outcome, Coflow, Instance};
use coflow_matching::IntMatrix;

/// Builds a shuffle coflow: `mappers × reducers` block of `size`-MB flows.
fn shuffle(id: usize, m: usize, mappers: &[usize], reducers: &[usize], size: u64) -> Coflow {
    let mut d = IntMatrix::zeros(m);
    for &i in mappers {
        for &j in reducers {
            d[(i, j)] = size;
        }
    }
    Coflow::new(id, d)
}

fn main() {
    // Arrival order (ids) is the nightly batch first — the worst possible
    // naive order — so H_A and the weight-aware rules genuinely differ.
    let m = 8;
    let nightly = shuffle(0, m, &[0, 1, 2, 3, 4, 5], &[2, 3, 4, 5, 6, 7], 40).with_weight(1.0);
    let etl = shuffle(1, m, &[2, 3, 4], &[5, 6, 7], 8).with_weight(10.0);
    let interactive = shuffle(2, m, &[0, 1], &[6, 7], 2).with_weight(100.0);
    let instance = Instance::new(m, vec![nightly, etl, interactive]);

    println!(
        "{:<8} {:>5} {:>6} {:>7}   completion slots",
        "order", "group", "bkfill", "obj"
    );
    for rule in [OrderRule::Arrival, OrderRule::LoadOverWeight, OrderRule::LpBased] {
        for (grouping, backfill) in [(false, false), (false, true), (true, false), (true, true)] {
            let spec = AlgorithmSpec {
                order: rule,
                grouping,
                backfill,
            };
            let out = run(&instance, &spec);
            verify_outcome(&instance, &out).expect("valid schedule");
            println!(
                "{:<8} {:>5} {:>6} {:>7.0}   nightly={} etl={} interactive={}",
                rule.name(),
                grouping,
                backfill,
                out.objective,
                out.completions[0],
                out.completions[1],
                out.completions[2]
            );
        }
    }

    // The headline behaviour: weight-aware orders finish the interactive
    // job long before the nightly batch.
    let smart = run(&instance, &AlgorithmSpec::algorithm2());
    assert!(
        smart.completions[2] < smart.completions[0],
        "the high-priority job must finish first under H_LP"
    );
    println!(
        "\nAlgorithm 2 finishes the interactive job at slot {} and the \
         nightly batch at slot {}.",
        smart.completions[2], smart.completions[0]
    );
}
