//! Trace-driven evaluation: generate the synthetic Facebook-like trace,
//! filter it by coflow width (the paper's `M0` filters), and compare the
//! scheduling algorithms, reporting the same normalized quantities as the
//! paper's Table 1.
//!
//! Run with: `cargo run --release --example facebook_trace`

use coflow::ordering::{compute_order, OrderRule};
use coflow::sched::run_with_order;
use coflow::verify_outcome;
use coflow_workloads::{
    assign_weights, filter_by_width, generate_trace, TraceConfig, WeightScheme,
};

fn main() {
    // A 40-port slice of the cluster keeps the LP solve fast in an example.
    let cfg = TraceConfig {
        ports: 40,
        num_coflows: 60,
        seed: 42,
        max_flow_size: 128,
        ..TraceConfig::default()
    };
    let trace = generate_trace(&cfg);
    println!(
        "generated {} coflows on a {}x{} fabric",
        trace.len(),
        cfg.ports,
        cfg.ports
    );

    // Width histogram, echoing the paper's filtering discussion.
    let mut widths: Vec<usize> = trace.coflows().iter().map(|c| c.width()).collect();
    widths.sort_unstable();
    println!(
        "coflow widths: min {}, median {}, max {}",
        widths[0],
        widths[widths.len() / 2],
        widths[widths.len() - 1]
    );

    let filter = 8; // scaled analogue of the paper's M0 >= 30..50 filters
    let filtered = filter_by_width(&trace, filter);
    let weighted = assign_weights(&filtered, WeightScheme::RandomPermutation { seed: 7 });
    println!(
        "after the M0 >= {} filter: {} coflows\n",
        filter,
        weighted.len()
    );

    println!("{:<8} {:>12} {:>12}", "order", "case (a)", "case (d)");
    let mut denominator = f64::NAN;
    for rule in [OrderRule::Arrival, OrderRule::LoadOverWeight, OrderRule::LpBased] {
        let order = compute_order(&weighted, rule);
        let base = run_with_order(&weighted, order.clone(), false, false);
        let best = run_with_order(&weighted, order, true, true);
        verify_outcome(&weighted, &base).expect("valid");
        verify_outcome(&weighted, &best).expect("valid");
        if rule == OrderRule::LpBased {
            denominator = best.objective;
        }
        println!(
            "{:<8} {:>12.0} {:>12.0}",
            rule.name(),
            base.objective,
            best.objective
        );
    }
    println!(
        "\n(the paper normalizes Table 1 by the H_LP case-(d) cost: {:.0})",
        denominator
    );
}
