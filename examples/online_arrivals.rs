//! Online scheduling under Poisson arrivals (extension).
//!
//! The paper's algorithms are offline; its conclusion calls online
//! operation the most interesting direction. This example streams coflows
//! into the fabric and compares the offline Algorithm 2 (which knows the
//! whole trace, but still must respect release dates) against the online
//! ρ/w-priority scheduler (which only sees released coflows).
//!
//! Run with: `cargo run --release --example online_arrivals`

use coflow::analysis::analyze;
use coflow::bounds::interval_lp_bound;
use coflow::sched::online::run_online;
use coflow::sched::{run, AlgorithmSpec};
use coflow::verify_outcome;
use coflow_workloads::{assign_weights, generate_trace, TraceConfig, WeightScheme};

fn main() {
    let cfg = TraceConfig {
        ports: 20,
        num_coflows: 30,
        seed: 99,
        zero_release: false,
        mean_interarrival: 50.0,
        max_flow_size: 128,
        ..TraceConfig::default()
    };
    let instance = assign_weights(
        &generate_trace(&cfg),
        WeightScheme::RandomPermutation { seed: 99 },
    );
    let span = instance
        .coflows()
        .iter()
        .map(|c| c.release)
        .max()
        .unwrap_or(0);
    println!(
        "{} coflows arriving over {} slots on a {}x{} fabric\n",
        instance.len(),
        span,
        cfg.ports,
        cfg.ports
    );

    let offline = run(&instance, &AlgorithmSpec::algorithm2());
    verify_outcome(&instance, &offline).expect("valid");
    let online = run_online(&instance);
    verify_outcome(&instance, &online).expect("valid");
    let bound = interval_lp_bound(&instance);

    println!("{:<28} {:>12} {:>8}", "scheduler", "objective", "/bound");
    println!(
        "{:<28} {:>12.0} {:>8.2}",
        "offline Algorithm 2",
        offline.objective,
        offline.objective / bound
    );
    println!(
        "{:<28} {:>12.0} {:>8.2}",
        "online rho/w priority",
        online.objective,
        online.objective / bound
    );

    let a_off = analyze(&instance, &offline);
    let a_on = analyze(&instance, &online);
    println!(
        "\nmean slowdown: offline {:.2}, online {:.2}",
        a_off.mean_slowdown, a_on.mean_slowdown
    );
    println!(
        "fabric utilization: offline {:.2}, online {:.2}",
        a_off.fabric_utilization, a_on.fabric_utilization
    );
    assert!(bound <= online.objective + 1e-6);
    assert!(bound <= offline.objective + 1e-6);
}
