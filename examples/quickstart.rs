//! Quickstart: schedule the paper's Figure 1 MapReduce shuffle.
//!
//! A 2-mapper / 2-reducer shuffle on a 2×2 switch is one coflow with demand
//! matrix [[1, 2], [2, 1]]. Its load ρ(D) = 3 is a hard lower bound on the
//! completion time, and Algorithm 2 achieves exactly that.
//!
//! Run with: `cargo run --example quickstart`

use coflow::sched::{run, AlgorithmSpec};
use coflow::{verify_outcome, Coflow, Instance};
use coflow_matching::{bvn_decompose, IntMatrix};

fn main() {
    // The Figure 1 coflow: d[i][j] = data units from mapper i to reducer j.
    let shuffle = IntMatrix::from_nested(&[[1, 2], [2, 1]]);
    println!("coflow demand:\n{:?}", shuffle);
    println!("load rho(D) = {} (lower bound on completion)", shuffle.load());

    // Algorithm 1: decompose into matchings.
    let dec = bvn_decompose(&shuffle);
    println!("\nBirkhoff-von Neumann decomposition:");
    for slot in &dec.slots {
        println!(
            "  run matching {:?} for {} slot(s)",
            slot.perm.as_slice(),
            slot.count
        );
    }
    assert_eq!(dec.total_slots(), 3);

    // The full pipeline: LP ordering + grouping (Algorithm 2).
    let instance = Instance::new(2, vec![Coflow::new(0, shuffle)]);
    let outcome = run(&instance, &AlgorithmSpec::algorithm2());
    verify_outcome(&instance, &outcome).expect("schedule must satisfy problem (O)");

    println!("\ncompletion time: {} slots (optimal)", outcome.completions[0]);
    println!("total weighted completion time: {}", outcome.objective);
    assert_eq!(outcome.completions, vec![3]);
}
