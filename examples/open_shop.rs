//! The Appendix A connection: concurrent open shop as diagonal coflows.
//!
//! Builds an open-shop instance, embeds it as a coflow instance, and checks
//! that (i) the brute-force best permutation schedule matches the coflow
//! exact optimum, and (ii) the coflow approximation algorithms land close.
//!
//! Run with: `cargo run --example open_shop`

use coflow::sched::optimal::optimal_objective;
use coflow::sched::{run, AlgorithmSpec};
use coflow::verify_outcome;
use coflow_openshop::{
    best_permutation_objective, open_shop_to_coflow, order_by_wspt_bottleneck,
    permutation_schedule, Job, OpenShopInstance,
};

fn main() {
    // Three customer orders on two machines (e.g. two component fabs).
    let shop = OpenShopInstance::new(
        2,
        vec![
            Job::new(0, vec![2, 1]).with_weight(3.0),
            Job::new(1, vec![1, 3]).with_weight(1.0),
            Job::new(2, vec![2, 2]).with_weight(2.0),
        ],
    );

    // Heuristic: WSPT on the bottleneck machine (the open-shop analogue of
    // the paper's H_rho ordering).
    let order = order_by_wspt_bottleneck(&shop);
    let sched = permutation_schedule(&shop, &order);
    println!("WSPT-bottleneck order {:?}", sched.order);
    println!("completions {:?}, objective {}", sched.completions, sched.objective);

    // Exact optimum over all permutations (optimal for concurrent open shop).
    let best = best_permutation_objective(&shop);
    println!("best permutation objective: {}", best);

    // Appendix A: embed as diagonal coflows; the coflow exact optimum
    // agrees with the open-shop optimum.
    let coflow_inst = open_shop_to_coflow(&shop);
    let exact = optimal_objective(&coflow_inst);
    println!("coflow exact optimum on the diagonal embedding: {}", exact);
    assert_eq!(best, exact, "Appendix A equivalence");

    // And the coflow approximation algorithm is within its proven ratio.
    let approx = run(&coflow_inst, &AlgorithmSpec::algorithm2());
    verify_outcome(&coflow_inst, &approx).expect("valid schedule");
    println!(
        "Algorithm 2 objective: {} (ratio {:.3}, guarantee {:.2})",
        approx.objective,
        approx.objective / exact,
        coflow::DETERMINISTIC_RATIO_NO_RELEASE
    );
    assert!(approx.objective / exact <= coflow::DETERMINISTIC_RATIO_NO_RELEASE);
}
