//! Deterministic vs randomized grouping (Theorems 1 and 2).
//!
//! The randomized algorithm replaces the doubling grid with a randomly
//! shifted grid of ratio 1 + √2. Its *expected* guarantee is better
//! (9 + 16√2/3 ≈ 16.5 vs 67/3 ≈ 22.3); this example estimates the expected
//! cost by Monte-Carlo and compares it with the deterministic cost and the
//! LP lower bound.
//!
//! Run with: `cargo run --release --example randomized_vs_deterministic`

use coflow::bounds::interval_lp_bound;
use coflow::ordering::OrderRule;
use coflow::sched::{run, run_randomized, AlgorithmSpec};
use coflow::verify_outcome;
use coflow_workloads::{assign_weights, generate_trace, TraceConfig, WeightScheme};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = TraceConfig {
        ports: 16,
        num_coflows: 30,
        seed: 11,
        max_flow_size: 64,
        ..TraceConfig::default()
    };
    let instance = assign_weights(
        &generate_trace(&cfg),
        WeightScheme::RandomPermutation { seed: 11 },
    );

    let det = run(&instance, &AlgorithmSpec::algorithm2());
    verify_outcome(&instance, &det).expect("valid");
    println!("deterministic (Algorithm 2) cost: {:.0}", det.objective);

    let mut rng = StdRng::seed_from_u64(2015);
    let samples = 50;
    let mut total = 0.0;
    let mut best = f64::INFINITY;
    let mut worst: f64 = 0.0;
    for _ in 0..samples {
        let out = run_randomized(&instance, OrderRule::LpBased, false, &mut rng);
        verify_outcome(&instance, &out).expect("valid");
        total += out.objective;
        best = best.min(out.objective);
        worst = worst.max(out.objective);
    }
    let mean = total / samples as f64;
    println!(
        "randomized over {} samples: mean {:.0}, best {:.0}, worst {:.0}",
        samples, mean, best, worst
    );

    let lb = interval_lp_bound(&instance);
    println!("interval-LP lower bound: {:.0}", lb);
    println!(
        "ratios vs bound: deterministic {:.2}, randomized mean {:.2} \
         (guarantees {:.1} and {:.1})",
        det.objective / lb,
        mean / lb,
        coflow::DETERMINISTIC_RATIO_NO_RELEASE,
        coflow::randomized_ratio_no_release()
    );
    assert!(det.objective / lb <= coflow::DETERMINISTIC_RATIO_NO_RELEASE);
}
